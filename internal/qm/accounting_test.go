package qm

// Regression tests for the drop/refused accounting split: Dropped counts
// frames definitively lost and must equal LiveDropped at quiescence under
// every overload policy, while Refused counts submit attempts turned away.
// Before the split, Backpressure charged every refused attempt to Dropped
// while liveDrops counted none, so Totals and LiveDropped silently diverged.

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
)

// TestDropAccountingMatchesLiveAcrossPolicies drives each policy through an
// overload episode and checks the invariant Totals().Dropped ==
// LiveDropped() at every quiescent point, plus the per-policy expectations
// for attempts vs. losses.
func TestDropAccountingMatchesLiveAcrossPolicies(t *testing.T) {
	check := func(t *testing.T, m *Manager, where string) {
		t.Helper()
		if got, live := m.Totals().Dropped, m.LiveDropped(); got != live {
			t.Fatalf("%s: Totals().Dropped=%d diverged from LiveDropped()=%d", where, got, live)
		}
		if m.Totals().Dropped != m.Dropped || m.Totals().Refused != m.Refused {
			t.Fatalf("%s: aggregate fields disagree with per-stream sums", where)
		}
	}

	t.Run("backpressure", func(t *testing.T) {
		m := overloadManager(t, 1, 2)
		fillRing(t, m, 0, 2)
		for i := 0; i < 3; i++ {
			if v := m.Offer(0, Frame{Size: 64}); v != Busy {
				t.Fatalf("offer %d: verdict %v, want Busy", i, v)
			}
			check(t, m, "after busy offer")
		}
		st := m.Stats(0)
		if st.Refused != 3 || st.Dropped != 0 {
			t.Fatalf("backpressure stats = %+v, want 3 refused / 0 dropped", st)
		}
	})

	t.Run("reject-new", func(t *testing.T) {
		m := overloadManager(t, 1, 2)
		m.SetPolicy(RejectNew)
		fillRing(t, m, 0, 2)
		for i := 0; i < 3; i++ {
			if v := m.Offer(0, Frame{Size: 64}); v != Shed {
				t.Fatalf("offer %d: verdict %v, want Shed", i, v)
			}
			check(t, m, "after shed")
		}
		st := m.Stats(0)
		if st.Refused != 3 || st.Dropped != 3 {
			t.Fatalf("reject-new stats = %+v, want 3 refused / 3 dropped", st)
		}
	})

	t.Run("drop-oldest", func(t *testing.T) {
		m := overloadManager(t, 1, 2)
		m.SetPolicy(DropOldest)
		fillRing(t, m, 0, 2)
		m.Offer(0, Frame{Size: 64}) // Busy: marks one eviction
		m.Offer(0, Frame{Size: 64}) // Busy: debt already pending
		check(t, m, "with eviction pending")
		m.Source(0).NextHead() // consumes the debt, serves a head
		if v := m.Offer(0, Frame{Size: 64}); v != Queued {
			t.Fatalf("retry after eviction: verdict %v, want Queued", v)
		}
		check(t, m, "after retry queued")
		st := m.Stats(0)
		if st.Refused != 2 || st.Dropped != 1 {
			t.Fatalf("drop-oldest stats = %+v, want 2 refused / 1 dropped", st)
		}
	})
}

// TestFairTagsSurviveBusyRetry is the Offer→Busy→retry→Queued consistency
// check: a FairTag stream's virtual finish tag must reflect only accepted
// frames. Under DropOldest with eviction debt already pending, each Busy
// offer stamps and must roll back; the eventual Queued retry stamps once.
func TestFairTagsSurviveBusyRetry(t *testing.T) {
	m, err := New(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Describe(0, attr.Spec{Class: attr.FairTag, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	m.SetPolicy(DropOldest)
	// Two accepted frames of 100 bytes: finish tag 200.
	for k := 0; k < 2; k++ {
		if v := m.Offer(0, Frame{Size: 100, Arrival: uint64(k)}); v != Queued {
			t.Fatalf("fill %d: verdict %v", k, v)
		}
	}
	if m.finish[0] != 200 {
		t.Fatalf("finish after two accepts = %v, want 200", m.finish[0])
	}
	// First overflow offer marks the eviction; the second hits the
	// debt-already-pending path. Neither entered the queue, so neither may
	// move the finish tag.
	if v := m.Offer(0, Frame{Size: 100, Arrival: 7}); v != Busy || m.finish[0] != 200 {
		t.Fatalf("first busy offer: verdict %v finish %v, want Busy/200", v, m.finish[0])
	}
	if v := m.Offer(0, Frame{Size: 100, Arrival: 7}); v != Busy || m.finish[0] != 200 {
		t.Fatalf("debt-pending busy offer: verdict %v finish %v, want Busy/200", v, m.finish[0])
	}
	// The card side consumes the debt (arrival 0 evicted, arrival 1 served;
	// its finish tag 200 rides out unchanged), freeing space.
	h, ok := m.Source(0).NextHead()
	if !ok || h.Tag != 200 {
		t.Fatalf("head after eviction: %+v/%v, want tag 200", h, ok)
	}
	// The retry is finally accepted: exactly one more stamp.
	if v := m.Offer(0, Frame{Size: 100, Arrival: 7}); v != Queued {
		t.Fatalf("retry: verdict %v, want Queued", v)
	}
	if m.finish[0] != 300 {
		t.Fatalf("finish after accepted retry = %v, want 300 (one stamp only)", m.finish[0])
	}
	// And the accepted frame carries tags from the rolled-back state.
	if h, ok := m.Source(0).NextHead(); !ok || h.Arrival != 7 || h.Tag != 300 {
		t.Fatalf("accepted retry's head = %+v/%v, want arrival 7 tag 300", h, ok)
	}
}

// TestSTFQLoadsStartTags checks SetProgram's only datapath effect: an STFQ
// stream's card heads carry virtual start tags, a WFQ-style stream's carry
// finish tags, from identical submissions.
func TestSTFQLoadsStartTags(t *testing.T) {
	build := func(t *testing.T, p decision.Program) *Manager {
		t.Helper()
		m, err := New(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Describe(0, attr.Spec{Class: attr.FairTag, Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if err := m.SetProgram(0, p); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			if !m.Submit(0, Frame{Size: 100, Arrival: uint64(k)}) {
				t.Fatalf("submit %d", k)
			}
		}
		return m
	}

	wfq := build(t, decision.ProgramTagOnly)
	stfq := build(t, decision.ProgramSTFQ)
	wsrc, ssrc := wfq.Source(0), stfq.Source(0)
	// Backlogged weight-1 stream, 100-byte frames: starts 0,100,200 and
	// finishes 100,200,300.
	for k, want := range []struct{ start, finish uint64 }{{0, 100}, {100, 200}, {200, 300}} {
		wh, _ := wsrc.NextHead()
		sh, _ := ssrc.NextHead()
		if wh.Tag != want.finish {
			t.Fatalf("wfq head %d tag = %d, want finish %d", k, wh.Tag, want.finish)
		}
		if sh.Tag != want.start {
			t.Fatalf("stfq head %d tag = %d, want start %d", k, sh.Tag, want.start)
		}
	}
	if err := stfq.SetProgram(5, decision.ProgramSTFQ); err == nil {
		t.Fatal("SetProgram accepted an out-of-range stream")
	}
}
