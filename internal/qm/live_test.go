package qm

import (
	"strings"
	"testing"

	"repro/internal/attr"
)

// TestEvictDebtReconciliation pins the in-flight accounting seam the control
// plane fences on: under DropOldest a charged drop leaves the frame
// physically queued until dequeue, and Backlog − EvictDebt is the frame
// count still owing delivery.
func TestEvictDebtReconciliation(t *testing.T) {
	m, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Describe(0, attr.Spec{Class: attr.EDF, Period: 1}); err != nil {
		t.Fatal(err)
	}
	m.SetPolicy(DropOldest)
	for k := 0; k < 4; k++ {
		if m.Offer(0, Frame{Size: 1, Arrival: uint64(k)}) != Queued {
			t.Fatalf("frame %d not queued", k)
		}
	}
	if m.Offer(0, Frame{Size: 1, Arrival: 4}) != Busy {
		t.Fatal("full ring under DropOldest should report Busy while the eviction frees space")
	}
	if got := m.EvictDebt(0); got != 1 {
		t.Fatalf("evict debt %d, want 1", got)
	}
	// The physically queued count includes the doomed head; the owed count
	// subtracts it.
	if owed := m.Backlog(0) - int(m.EvictDebt(0)); owed != 3 {
		t.Fatalf("owed frames %d, want 3", owed)
	}
	// The card-side dequeue consumes the debt before serving a head.
	if _, ok := m.Source(0).NextHead(); !ok {
		t.Fatal("dequeue failed")
	}
	if got := m.EvictDebt(0); got != 0 {
		t.Fatalf("evict debt after dequeue %d, want 0", got)
	}
	if m.EvictDebt(-1) != 0 || m.EvictDebt(5) != 0 {
		t.Fatal("out-of-range debt must read 0")
	}
}

func TestResizeBurst(t *testing.T) {
	m, err := NewShared(2, SharedConfig{Reservation: 2, Burst: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := m.Describe(i, attr.Spec{Class: attr.EDF, Period: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Fill stream 0 past its reservation so credits are out on loan.
	for k := 0; k < 5; k++ {
		if m.Offer(0, Frame{Size: 1, Arrival: uint64(k)}) != Queued {
			t.Fatalf("frame %d not queued", k)
		}
	}
	ps, _ := m.PoolStats()
	if ps.Lent != 3 || ps.Free != 1 {
		t.Fatalf("ledger before resize: %+v", ps)
	}
	// Shrink below the lent count: free goes negative, lending pauses, and
	// nothing queued is discarded.
	if err := m.ResizeBurst(1); err != nil {
		t.Fatal(err)
	}
	ps, _ = m.PoolStats()
	if ps.Burst != 1 || ps.Free != -2 {
		t.Fatalf("ledger after shrink: %+v", ps)
	}
	if m.Offer(0, Frame{Size: 1, Arrival: 9}) == Queued {
		t.Fatal("shrunken pool must refuse further lending")
	}
	if got := m.Backlog(0); got != 5 {
		t.Fatalf("resize discarded queued frames: backlog %d, want 5", got)
	}
	// Reclaims pay the balance down; growth resumes lending immediately.
	src := m.Source(0)
	for k := 0; k < 5; k++ {
		if _, ok := src.NextHead(); !ok {
			t.Fatalf("dequeue %d failed", k)
		}
	}
	ps, _ = m.PoolStats()
	if ps.Free != 1 || ps.Lent != 0 {
		t.Fatalf("ledger after drain: %+v", ps)
	}
	if err := m.ResizeBurst(6); err != nil {
		t.Fatal(err)
	}
	if ps, _ = m.PoolStats(); ps.Burst != 6 || ps.Free != 6 {
		t.Fatalf("ledger after grow: %+v", ps)
	}

	// Validation: negative, beyond physical slack, fixed-capacity manager.
	if err := m.ResizeBurst(-1); err == nil {
		t.Error("negative burst accepted")
	}
	if err := m.ResizeBurst(1 << 20); err == nil || !strings.Contains(err.Error(), "physical slack") {
		t.Errorf("burst beyond the physical rings accepted: %v", err)
	}
	fixed, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixed.ResizeBurst(2); err == nil {
		t.Error("resize on a fixed-capacity manager accepted")
	}
}
