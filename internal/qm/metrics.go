package qm

import "repro/internal/obs"

// RegisterMetrics publishes the Queue Manager's accounting on reg under
// prefix (canonically "qm"): prefix.submitted / prefix.dequeued /
// prefix.dropped / prefix.bytes from the per-stream counters, and
// prefix.backlog, the live queued-frame depth summed over every stream ring.
//
// The counters behind the first four gauges are plain fields owned by the
// producer and scheduler goroutines, so per the obs sampling discipline they
// are exact only when the pipeline is quiescent (scraped before Run, after
// it, or between single-threaded steps); a live scrape sees an approximate
// in-flight value. Backlog is safe live: ringbuf.Len is observer-safe.
func (m *Manager) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".submitted", "frames", func() float64 { return float64(m.Totals().Submitted) })
	reg.GaugeFunc(prefix+".dequeued", "frames", func() float64 { return float64(m.Totals().Dequeued) })
	reg.GaugeFunc(prefix+".dropped", "frames", func() float64 { return float64(m.Totals().Dropped) })
	reg.GaugeFunc(prefix+".bytes", "bytes", func() float64 { return float64(m.Totals().Bytes) })
	reg.GaugeFunc(prefix+".backlog", "frames", func() float64 {
		var depth int
		for i := range m.queues {
			depth += m.queues[i].Len()
		}
		return float64(depth)
	})
}
