package qm

import (
	"fmt"

	"repro/internal/obs"
)

// RegisterMetrics publishes the Queue Manager's accounting on reg under
// prefix (canonically "qm"): prefix.submitted / prefix.dequeued /
// prefix.dropped / prefix.refused / prefix.bytes from the per-stream
// counters; prefix.backlog, the live queued-frame depth summed over every
// stream ring; prefix.live_dropped, the definitively-lost frame count under
// the overload policy; and a per-stream-slot prefix.slotI.dropped gauge so
// fairness reports can see asymmetric loss instead of only the aggregate.
//
// dropped and refused are deliberately distinct series: dropped is frames
// lost (it converges to live_dropped at quiescence), refused is submit
// attempts turned away (retry pressure). A backpressured system shows high
// refused with zero dropped; conflating them is the accounting bug this
// split fixed.
//
// The counters behind the plain-field gauges are owned by the producer and
// scheduler goroutines, so per the obs sampling discipline they are exact
// only when the pipeline is quiescent (scraped before Run, after it, or
// between single-threaded steps); a live scrape sees an approximate
// in-flight value. Backlog and live_dropped are safe live: ringbuf.Len is
// observer-safe and live_dropped is atomic.
func (m *Manager) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".submitted", "frames", func() float64 { return float64(m.Totals().Submitted) })
	reg.GaugeFunc(prefix+".dequeued", "frames", func() float64 { return float64(m.Totals().Dequeued) })
	reg.GaugeFunc(prefix+".dropped", "frames", func() float64 { return float64(m.Totals().Dropped) })
	reg.GaugeFunc(prefix+".refused", "attempts", func() float64 { return float64(m.Totals().Refused) })
	reg.GaugeFunc(prefix+".bytes", "bytes", func() float64 { return float64(m.Totals().Bytes) })
	reg.GaugeFunc(prefix+".live_dropped", "frames", func() float64 { return float64(m.LiveDropped()) })
	reg.GaugeFunc(prefix+".backlog", "frames", func() float64 {
		var depth int
		for i := range m.queues {
			depth += m.queues[i].Len()
		}
		return float64(depth)
	})
	for i := range m.queues {
		slot := i
		reg.GaugeFunc(fmt.Sprintf("%s.slot%d.dropped", prefix, slot), "frames",
			func() float64 { return float64(m.perDropped[slot]) })
	}
	if p := m.shared; p != nil {
		// Shared-pool lending ledger: every cell is atomic, so these gauges
		// are safe to scrape while the pipeline runs (and at quiescence
		// pool.free + pool.lent equals the configured burst, borrows equals
		// reclaims — the credit-conservation invariant, live on a dashboard).
		reg.GaugeFunc(prefix+".pool.free", "frames", func() float64 { return float64(p.free.Load()) })
		reg.GaugeFunc(prefix+".pool.lent", "frames", func() float64 {
			var lent uint64
			for i := range p.lent {
				lent += p.lent[i].Load()
			}
			return float64(lent)
		})
		reg.GaugeFunc(prefix+".pool.borrows", "credits", func() float64 { return float64(p.borrows.Load()) })
		reg.GaugeFunc(prefix+".pool.denials", "attempts", func() float64 { return float64(p.denials.Load()) })
		reg.GaugeFunc(prefix+".pool.reclaims", "credits", func() float64 { return float64(p.reclaims.Load()) })
	}
}
