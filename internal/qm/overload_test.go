package qm

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/obs"
)

func overloadManager(t *testing.T, streams, capacity int) *Manager {
	t.Helper()
	m, err := New(streams, capacity)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < streams; i++ {
		if err := m.Describe(i, attr.Spec{Class: attr.EDF, Period: 100}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func fillRing(t *testing.T, m *Manager, stream, n int) {
	t.Helper()
	for f := 0; f < n; f++ {
		if v := m.Offer(stream, Frame{Size: 64, Arrival: uint64(f)}); v != Queued {
			t.Fatalf("fill frame %d: verdict %v", f, v)
		}
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		Backpressure: "backpressure",
		RejectNew:    "reject-new",
		DropOldest:   "drop-oldest",
		Policy(99):   "policy(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", uint8(p), got, want)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Backpressure, RejectNew, DropOldest} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy name")
	}
}

func TestBackpressureVerdictMatchesSubmit(t *testing.T) {
	m := overloadManager(t, 1, 2)
	fillRing(t, m, 0, 2)
	if v := m.Offer(0, Frame{Size: 64}); v != Busy {
		t.Fatalf("full ring under Backpressure: verdict %v, want Busy", v)
	}
	if m.Refused != 1 || m.perRefused[0] != 1 {
		t.Fatalf("refused attempt must count as refused: %d/%d", m.Refused, m.perRefused[0])
	}
	if m.Dropped != 0 || m.perDropped[0] != 0 || m.LiveDropped() != 0 {
		t.Fatalf("a backpressure refusal is not a drop (the producer still holds the frame): %d/%d/%d",
			m.Dropped, m.perDropped[0], m.LiveDropped())
	}
}

func TestRejectNewShedsWithAccounting(t *testing.T) {
	m := overloadManager(t, 2, 2)
	m.SetPolicy(RejectNew)
	if m.PolicyInEffect() != RejectNew {
		t.Fatal("policy not installed")
	}
	fillRing(t, m, 1, 2)
	for i := 0; i < 3; i++ {
		if v := m.Offer(1, Frame{Size: 64}); v != Shed {
			t.Fatalf("shed %d: verdict %v, want Shed", i, v)
		}
	}
	if m.Stats(1).Dropped != 3 || m.Stats(0).Dropped != 0 {
		t.Fatalf("per-slot drop accounting: slot1=%d slot0=%d, want 3/0", m.Stats(1).Dropped, m.Stats(0).Dropped)
	}
	if m.LiveDropped() != 3 {
		t.Fatalf("LiveDropped=%d, want 3", m.LiveDropped())
	}
	// The shed frames must not have advanced the queued frames' ordering:
	// exactly the 2 queued frames drain.
	src := m.Source(1)
	for i := 0; i < 2; i++ {
		if _, ok := src.NextHead(); !ok {
			t.Fatalf("queued frame %d vanished", i)
		}
	}
	if _, ok := src.NextHead(); ok {
		t.Fatal("a shed frame leaked into the ring")
	}
}

func TestRejectNewRollsBackFairTags(t *testing.T) {
	m := overloadManager(t, 1, 2)
	if err := m.Describe(0, attr.Spec{Class: attr.FairTag, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	m.SetPolicy(RejectNew)
	fillRing(t, m, 0, 2)
	finishBefore := m.finish[0]
	if v := m.Offer(0, Frame{Size: 1000}); v != Shed {
		t.Fatalf("verdict %v, want Shed", v)
	}
	if m.finish[0] != finishBefore {
		t.Fatalf("a shed frame advanced the virtual finish tag: %v -> %v", finishBefore, m.finish[0])
	}
}

func TestDropOldestEvictsAtDequeue(t *testing.T) {
	m := overloadManager(t, 1, 2)
	m.SetPolicy(DropOldest)
	fillRing(t, m, 0, 2) // arrivals 0, 1
	// Ring full: the offer marks the oldest frame for eviction and asks the
	// producer to retry; only one eviction is outstanding per ring.
	if v := m.Offer(0, Frame{Size: 64, Arrival: 7}); v != Busy {
		t.Fatalf("first overflow offer: verdict %v, want Busy", v)
	}
	if v := m.Offer(0, Frame{Size: 64, Arrival: 7}); v != Busy {
		t.Fatalf("retry with eviction pending: verdict %v, want Busy", v)
	}
	if m.Dropped != 1 || m.LiveDropped() != 1 {
		t.Fatalf("exactly one eviction charged: dropped=%d live=%d", m.Dropped, m.LiveDropped())
	}
	if m.Refused != 2 {
		t.Fatalf("both busy offers were refused attempts: refused=%d, want 2", m.Refused)
	}
	// The card side consumes the debt: arrival 0 is discarded, arrival 1 is
	// served, freeing space for the retried frame.
	src := m.Source(0)
	h, ok := src.NextHead()
	if !ok || h.Arrival != 1 {
		t.Fatalf("head after eviction: %v/%v, want arrival 1", h, ok)
	}
	if v := m.Offer(0, Frame{Size: 64, Arrival: 7}); v != Queued {
		t.Fatalf("retry after eviction freed space: verdict %v, want Queued", v)
	}
	if m.Stats(0).Dequeued != 1 {
		t.Fatalf("evicted frame counted as dequeued: %d", m.Stats(0).Dequeued)
	}
}

func TestSaturateForcesOverflowPath(t *testing.T) {
	m := overloadManager(t, 1, 8)
	m.SetPolicy(RejectNew)
	m.Saturate(3)
	for i := 0; i < 3; i++ {
		if v := m.Offer(0, Frame{Size: 64}); v != Shed {
			t.Fatalf("saturated offer %d: verdict %v, want Shed", i, v)
		}
	}
	if v := m.Offer(0, Frame{Size: 64}); v != Queued {
		t.Fatalf("burst of 3 must end after 3 attempts: verdict %v", v)
	}
	if m.Stats(0).Dropped != 3 || m.LiveDropped() != 3 {
		t.Fatalf("saturation drops: %d/%d, want 3/3", m.Stats(0).Dropped, m.LiveDropped())
	}
}

func TestDrainSalvagesBacklogSkippingEvicted(t *testing.T) {
	m := overloadManager(t, 1, 4)
	m.SetPolicy(DropOldest)
	fillRing(t, m, 0, 4) // arrivals 0..3
	m.Offer(0, Frame{Size: 64, Arrival: 9})
	var got []uint64
	n := m.Drain(0, func(f Frame) { got = append(got, f.Arrival) })
	if n != 3 || len(got) != 3 {
		t.Fatalf("salvaged %d frames (%v), want 3", n, got)
	}
	for i, a := range []uint64{1, 2, 3} {
		if got[i] != a {
			t.Fatalf("salvage order %v, want [1 2 3] (arrival 0 owed to eviction)", got)
		}
	}
	if m.Backlog(0) != 0 {
		t.Fatalf("backlog after drain: %d", m.Backlog(0))
	}
	if m.Drain(-1, nil) != 0 || m.Drain(99, nil) != 0 {
		t.Fatal("out-of-range drain must salvage nothing")
	}
}

func TestPerSlotDropGauges(t *testing.T) {
	m := overloadManager(t, 2, 2)
	m.SetPolicy(RejectNew)
	fillRing(t, m, 1, 2)
	m.Offer(1, Frame{Size: 64})
	m.Offer(1, Frame{Size: 64})
	reg := obs.NewRegistry()
	m.RegisterMetrics(reg, "qm")
	snap := map[string]float64{}
	for _, s := range reg.Snapshot().Metrics {
		snap[s.Name] = s.Value
	}
	if snap["qm.slot0.dropped"] != 0 || snap["qm.slot1.dropped"] != 2 {
		t.Fatalf("per-slot drop gauges: slot0=%v slot1=%v, want 0/2", snap["qm.slot0.dropped"], snap["qm.slot1.dropped"])
	}
	if snap["qm.live_dropped"] != 2 {
		t.Fatalf("live_dropped gauge: %v, want 2", snap["qm.live_dropped"])
	}
	found := false
	for name := range snap {
		if strings.HasPrefix(name, "qm.slot") {
			found = true
		}
	}
	if !found {
		t.Fatal("no per-slot gauges registered")
	}
}
