package qm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// This file implements BShare-style delay-driven shared buffering for the
// Queue Manager. Instead of giving every stream a fixed private ring, each
// stream keeps a small guaranteed reservation and the remaining capacity
// lives in one shared burst pool, lent frame-by-frame to streams that are
// bursting *and still draining* — the classic shared-memory switch buffer
// organization, with the lending decision driven by each stream's measured
// queueing delay rather than a static per-queue cap.
//
// The delay that drives lending is modeled time, never the wall clock: a
// frame's queueing delay is the aggregate dequeue clock (total dequeues over
// the stream count — the manager's modeled service round) minus the frame's
// Arrival stamp, measured as the frame leaves for the card. A stream whose
// heads are fresh (delay ≤ target) is bursting through a fast-draining
// queue, and lending it pool capacity absorbs the burst; a stream whose
// heads are stale has a standing queue, and lending it more would only add
// bufferbloat — it is cut off at its reservation until it drains. obs
// wall-clock time must never enter this path (the sslint walltime rule
// enforces it): lending decisions must be reproducible from the modeled
// trace alone.
//
// Concurrency: the pool sits exactly on the SPSC boundary. The producer
// acquires credits in Offer; the card side returns them at dequeue and
// publishes measured delays. Every shared cell (free credits, per-stream
// lent counts, last measured delay) is therefore atomic, mirroring the
// evict-debt pattern — the rings themselves stay strictly SPSC.

// SharedConfig parameterizes a delay-driven shared buffer pool.
type SharedConfig struct {
	// Reservation is each stream's guaranteed private ring depth in frames
	// (≥ 1): submits below it never touch the pool.
	Reservation int
	// Burst is the shared pool size in frames: capacity lent one frame at a
	// time to streams bursting past their reservation. Zero means no
	// lending — the pool degenerates to fixed rings of Reservation frames.
	Burst int
	// DelayTarget is the lending cutoff in modeled service rounds: a stream
	// whose last measured head delay exceeds it has a standing queue and is
	// refused further pool credit until the queue drains. Zero means any
	// measurable standing delay cuts lending off.
	DelayTarget uint64
}

// Validate checks the pool configuration.
func (c SharedConfig) Validate() error {
	if c.Reservation < 1 {
		return fmt.Errorf("qm: pool reservation %d", c.Reservation)
	}
	if c.Burst < 0 {
		return fmt.Errorf("qm: pool burst %d", c.Burst)
	}
	return nil
}

// pool is the shared-buffer ledger: a free-credit count plus per-stream
// lent-credit and measured-delay cells. All cells are atomic because the
// producer (acquire) and the card side (return, measure) race on them; the
// frame rings themselves remain SPSC.
type pool struct {
	reservation int
	delayTarget uint64

	// free is the shared burst credit remaining; lent[i] is how many of the
	// missing credits stream i holds. free + Σ lent == Burst always — the
	// credit-conservation invariant the tests pin down.
	free atomic.Int64
	lent []atomic.Uint64

	// lastDelay[i] is stream i's most recent head queueing delay in modeled
	// service rounds, written by the card-side dequeue and read by the
	// producer's lending decision.
	lastDelay []atomic.Uint64

	// borrows / denials / reclaims account the lending traffic: credits
	// acquired, borrow attempts refused (pool empty or delay over target),
	// credits returned. borrows == reclaims at quiescence.
	borrows  atomic.Uint64
	denials  atomic.Uint64
	reclaims atomic.Uint64

	// delayObs, when attached, receives every measured head delay. It is an
	// obs histogram: two atomic adds per Observe, no allocation.
	delayObs *obs.Histogram
}

// PoolStats is a snapshot of the shared pool's lending ledger. Free and
// Lent are live-safe (atomic); at quiescence Free+Lent == Burst and
// Borrows == Reclaims.
type PoolStats struct {
	Reservation int
	Burst       int
	Free        int64
	Lent        uint64
	Borrows     uint64
	Denials     uint64
	Reclaims    uint64
}

// ResizeBurst re-targets the shared pool's burst capacity to n frames — the
// live control plane's buffer-resize operation, applied at an epoch fence. A
// grow adds free credits immediately; a shrink withdraws them, letting free
// go negative when more than n credits are currently lent (lending pauses —
// admit refuses on free ≤ 0 — until reclaims pay the balance down, so no
// queued frame is ever discarded by a resize). The reservation and the
// physical rings are untouched: n is capped at the physical slack
// (ring capacity − reservation) so an admitted frame can never fail its
// push. Call it only from a fenced quiescent point — the delta is computed
// against the live ledger, which must not move mid-resize.
func (m *Manager) ResizeBurst(n int) error {
	p := m.shared
	if p == nil {
		return fmt.Errorf("qm: ResizeBurst on a fixed-capacity manager")
	}
	if n < 0 {
		return fmt.Errorf("qm: pool burst %d", n)
	}
	if max := m.queues[0].Cap() - p.reservation; n > max {
		return fmt.Errorf("qm: pool burst %d exceeds physical slack %d (ring %d − reservation %d)",
			n, max, m.queues[0].Cap(), p.reservation)
	}
	p.free.Add(int64(n) - p.borrowCap())
	return nil
}

// NewShared builds a manager whose n per-stream queues share a delay-driven
// burst pool instead of fixed private capacity: every stream is guaranteed
// cfg.Reservation frames, and up to cfg.Burst further frames are lent across
// streams by measured queueing delay. The physical rings are sized to the
// worst case (reservation plus the whole pool, rounded up to a power of
// two), so an admitted frame never fails its push; the *logical* capacity is
// enforced by the credit ledger in Offer.
func NewShared(n int, cfg SharedConfig) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := New(n, ceilPow2(cfg.Reservation+cfg.Burst))
	if err != nil {
		return nil, err
	}
	p := &pool{
		reservation: cfg.Reservation,
		delayTarget: cfg.DelayTarget,
		lent:        make([]atomic.Uint64, n),
		lastDelay:   make([]atomic.Uint64, n),
	}
	p.free.Store(int64(cfg.Burst))
	m.shared = p
	return m, nil
}

// ceilPow2 returns the smallest power of two ≥ v (and ≥ 1).
func ceilPow2(v int) int {
	c := 1
	for c < v {
		c <<= 1
	}
	return c
}

// Shared reports the pool configuration in effect, or ok=false for a
// fixed-capacity manager.
func (m *Manager) Shared() (SharedConfig, bool) {
	if m.shared == nil {
		return SharedConfig{}, false
	}
	return SharedConfig{
		Reservation: m.shared.reservation,
		Burst:       int(m.shared.borrowCap()),
		DelayTarget: m.shared.delayTarget,
	}, true
}

// PoolStats snapshots the lending ledger; ok=false for a fixed-capacity
// manager.
func (m *Manager) PoolStats() (PoolStats, bool) {
	p := m.shared
	if p == nil {
		return PoolStats{}, false
	}
	var lent uint64
	for i := range p.lent {
		lent += p.lent[i].Load()
	}
	return PoolStats{
		Reservation: p.reservation,
		Burst:       int(p.borrowCap()),
		Free:        p.free.Load(),
		Lent:        lent,
		Borrows:     p.borrows.Load(),
		Denials:     p.denials.Load(),
		Reclaims:    p.reclaims.Load(),
	}, true
}

// borrowCap recovers the configured Burst from the conservation invariant
// (free + Σ lent is constant); it is only read on cold paths.
func (p *pool) borrowCap() int64 {
	t := p.free.Load()
	for i := range p.lent {
		t += int64(p.lent[i].Load())
	}
	return t
}

// SetDelayHistogram attaches a sink for measured head delays (modeled
// service rounds, one observation per card-side dequeue). Attach it before
// the pipeline starts; it is a no-op on a fixed-capacity manager.
func (m *Manager) SetDelayHistogram(h *obs.Histogram) {
	if m.shared != nil {
		m.shared.delayObs = h
	}
}

// StreamDelay returns stream i's last measured head queueing delay in
// modeled service rounds (0 for fixed-capacity managers or out-of-range i).
// Safe to read live: the cell is atomic.
func (m *Manager) StreamDelay(i int) uint64 {
	if m.shared == nil || i < 0 || i >= len(m.shared.lastDelay) {
		return 0
	}
	return m.shared.lastDelay[i].Load()
}

// admit decides whether stream i, currently backlog frames deep, may accept
// one more frame; borrowed reports whether the acceptance consumed a pool
// credit (so a failed push can release it). Below the reservation admission
// is unconditional; past it the stream must borrow, which the pool refuses
// when the stream's measured delay shows a standing queue or the pool is
// exhausted — that refusal is exactly the ring-full condition the overload
// policy then arbitrates.
//
//sslint:hotpath
//sslint:borrows
func (p *pool) admit(i, backlog int) (ok, borrowed bool) {
	if backlog < p.reservation {
		return true, false
	}
	if p.lastDelay[i].Load() > p.delayTarget {
		p.denials.Add(1)
		return false, false
	}
	for { //sslint:bounded CAS retry; each iteration either lands the swap or observes a fresh contended value
		v := p.free.Load()
		if v <= 0 {
			p.denials.Add(1)
			return false, false
		}
		if p.free.CompareAndSwap(v, v-1) {
			p.lent[i].Add(1)
			p.borrows.Add(1)
			return true, true
		}
	}
}

// release undoes an admit that borrowed but whose push then failed; the
// credit goes straight back to the pool.
//
//sslint:reclaims
func (p *pool) release(i int) {
	p.lent[i].Add(^uint64(0))
	p.free.Add(1)
	p.borrows.Add(^uint64(0))
}

// reclaim returns one of stream i's lent credits, if it holds any — called
// on every frame that leaves the ring (dequeue, eviction, drain), since any
// departure shrinks the backlog the credits were covering. The CAS loop
// tolerates the producer racing a concurrent borrow.
//
//sslint:hotpath
//sslint:reclaims
func (p *pool) reclaim(i int) {
	for { //sslint:bounded CAS retry; each iteration either lands the swap or observes a fresh contended value
		v := p.lent[i].Load()
		if v == 0 {
			return
		}
		if p.lent[i].CompareAndSwap(v, v-1) {
			p.free.Add(1)
			p.reclaims.Add(1)
			return
		}
	}
}

// measure records stream i's head queueing delay as the frame leaves for
// the card: the manager's modeled service round (rounds) minus the frame's
// Arrival stamp, clamped at zero for frames produced ahead of service. The
// result feeds the producer's next lending decision and the attached
// histogram. Modeled time only — see the package comment.
//
//sslint:hotpath
func (p *pool) measure(i int, rounds, arrival uint64) {
	var d uint64
	if rounds > arrival {
		d = rounds - arrival
	}
	p.lastDelay[i].Store(d)
	if p.delayObs != nil {
		p.delayObs.Observe(d)
	}
}
