package qm

import (
	"testing"

	"repro/internal/obs"
)

// drainAll pops every queued frame of stream i through the card-side source,
// returning how many it dequeued.
func drainAll(t *testing.T, m *Manager, i int) int {
	t.Helper()
	src := m.Source(i)
	n := 0
	for {
		if _, ok := src.NextHead(); !ok {
			return n
		}
		n++
	}
}

func TestNewSharedValidation(t *testing.T) {
	if _, err := NewShared(4, SharedConfig{Reservation: 0, Burst: 4}); err == nil {
		t.Fatal("Reservation 0 accepted")
	}
	if _, err := NewShared(0, SharedConfig{Reservation: 2, Burst: 4}); err == nil {
		t.Fatal("0 streams accepted")
	}
	m, err := NewShared(4, SharedConfig{Reservation: 2, Burst: 4, DelayTarget: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := m.Shared()
	if !ok || cfg.Reservation != 2 || cfg.Burst != 4 || cfg.DelayTarget != 8 {
		t.Fatalf("Shared() = %+v, %v", cfg, ok)
	}
	fixed, _ := New(4, 8)
	if _, ok := fixed.Shared(); ok {
		t.Fatal("fixed-capacity manager reports a pool")
	}
	if _, ok := fixed.PoolStats(); ok {
		t.Fatal("fixed-capacity manager reports pool stats")
	}
	if d := fixed.StreamDelay(0); d != 0 {
		t.Fatalf("fixed-capacity StreamDelay = %d", d)
	}
}

// A stream bursting past its reservation borrows pool credits frame by
// frame; dequeues return them; at quiescence the ledger conserves credits
// exactly (free == burst, borrows == reclaims).
func TestPoolLendingAndCreditConservation(t *testing.T) {
	const res, burst = 2, 4
	m, err := NewShared(2, SharedConfig{Reservation: res, Burst: burst, DelayTarget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Reservation admits freely, then each extra frame borrows one credit.
	for k := 0; k < res+burst; k++ {
		if v := m.Offer(0, Frame{Size: 64, Arrival: uint64(k)}); v != Queued {
			t.Fatalf("offer %d: verdict %v", k, v)
		}
	}
	st, _ := m.PoolStats()
	if st.Free != 0 || st.Lent != burst || st.Borrows != burst {
		t.Fatalf("after burst: %+v", st)
	}
	// Pool exhausted: stream 1 cannot even start borrowing past its own
	// reservation, but its guaranteed frames still go through.
	for k := 0; k < res; k++ {
		if v := m.Offer(1, Frame{Size: 64}); v != Queued {
			t.Fatalf("reserved offer %d: verdict %v", k, v)
		}
	}
	if v := m.Offer(1, Frame{Size: 64}); v != Busy {
		t.Fatalf("exhausted-pool offer: verdict %v (want Busy under backpressure)", v)
	}
	st, _ = m.PoolStats()
	if st.Denials == 0 {
		t.Fatal("refused borrow did not count a denial")
	}
	// Draining returns every credit.
	got := drainAll(t, m, 0) + drainAll(t, m, 1)
	if got != res+burst+res {
		t.Fatalf("dequeued %d frames", got)
	}
	st, _ = m.PoolStats()
	if st.Free != burst || st.Lent != 0 || st.Borrows != st.Reclaims {
		t.Fatalf("at quiescence: %+v", st)
	}
}

// A stream whose measured head delay exceeds the target is cut off at its
// reservation — the standing-queue (bufferbloat) guard — and resumes
// borrowing once a fresh head brings the measured delay back down.
func TestPoolDelayThrottlesLending(t *testing.T) {
	m, err := NewShared(1, SharedConfig{Reservation: 2, Burst: 8, DelayTarget: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stale frames: arrival 0 while the dequeue clock advances past them.
	for k := 0; k < 4; k++ {
		if v := m.Offer(0, Frame{Size: 64}); v != Queued {
			t.Fatalf("offer %d: verdict %v", k, v)
		}
	}
	if n := drainAll(t, m, 0); n != 4 {
		t.Fatalf("drained %d", n)
	}
	if d := m.StreamDelay(0); d <= 1 {
		t.Fatalf("measured delay %d, want > target 1", d)
	}
	// Reservation still guaranteed; the borrow past it is refused. The
	// arrivals track the dequeue clock (4 frames served so far) so these
	// are fresh frames behind a stale measurement.
	if v := m.Offer(0, Frame{Size: 64, Arrival: 4}); v != Queued {
		t.Fatalf("reserved offer: verdict %v", v)
	}
	if v := m.Offer(0, Frame{Size: 64, Arrival: 5}); v != Queued {
		t.Fatalf("reserved offer: verdict %v", v)
	}
	if v := m.Offer(0, Frame{Size: 64, Arrival: 6}); v != Busy {
		t.Fatalf("throttled offer: verdict %v (want Busy)", v)
	}
	// Fresh heads (arrival at the clock) bring the measured delay back under
	// the target and lending resumes.
	if n := drainAll(t, m, 0); n != 2 {
		t.Fatalf("drained %d", n)
	}
	if d := m.StreamDelay(0); d > 1 {
		t.Fatalf("fresh-head delay %d, want ≤ 1", d)
	}
	for k := 0; k < 3; k++ {
		if v := m.Offer(0, Frame{Size: 64, Arrival: 6 + uint64(k)}); v != Queued {
			t.Fatalf("recovered offer %d: verdict %v", k, v)
		}
	}
	st, _ := m.PoolStats()
	if st.Lent != 1 {
		t.Fatalf("recovered lending: %+v", st)
	}
}

// DropOldest evictions and supervisor drains both shrink a borrowed
// backlog, so both must return lent credits.
func TestPoolReclaimOnEvictionAndDrain(t *testing.T) {
	m, err := NewShared(1, SharedConfig{Reservation: 1, Burst: 4, DelayTarget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	m.SetPolicy(DropOldest)
	for k := 0; k < 5; k++ {
		if v := m.Offer(0, Frame{Size: 64, Arrival: uint64(k)}); v != Queued {
			t.Fatalf("offer %d: verdict %v", k, v)
		}
	}
	// Pool exhausted: the next offer marks the oldest head for eviction.
	if v := m.Offer(0, Frame{Size: 64, Arrival: 5}); v != Busy {
		t.Fatalf("overflow offer: verdict %v", v)
	}
	if m.LiveDropped() != 1 {
		t.Fatalf("live drops %d", m.LiveDropped())
	}
	// The eviction is consumed by the card side and frees a credit; the
	// retried frame then borrows it back.
	src := m.Source(0)
	if _, ok := src.NextHead(); !ok {
		t.Fatal("dequeue failed")
	}
	st, _ := m.PoolStats()
	// Two departures (eviction + served head) against four lent credits.
	if st.Lent != 2 || st.Free != 2 {
		t.Fatalf("after eviction: %+v", st)
	}
	// Drain the rest: salvage skips nothing further, credits all return.
	salvaged := m.Drain(0, nil)
	if salvaged != 3 {
		t.Fatalf("salvaged %d", salvaged)
	}
	st, _ = m.PoolStats()
	if st.Free != 4 || st.Lent != 0 || st.Borrows != st.Reclaims {
		t.Fatalf("after drain: %+v", st)
	}
}

// The pool metrics surface on the qm registry page, live-safe.
func TestPoolMetricsRegistered(t *testing.T) {
	m, err := NewShared(2, SharedConfig{Reservation: 1, Burst: 2, DelayTarget: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.RegisterMetrics(reg, "qm")
	h := obs.NewHistogram()
	m.SetDelayHistogram(h)
	for k := 0; k < 3; k++ {
		m.Submit(0, Frame{Size: 64, Arrival: uint64(k)})
	}
	drainAll(t, m, 0)
	if h.Count() != 3 {
		t.Fatalf("delay histogram saw %d observations", h.Count())
	}
	snap := reg.Snapshot()
	want := map[string]float64{
		"qm.pool.free":     2,
		"qm.pool.lent":     0,
		"qm.pool.borrows":  2,
		"qm.pool.reclaims": 2,
	}
	found := 0
	for _, mt := range snap.Metrics {
		if v, ok := want[mt.Name]; ok {
			found++
			if mt.Value != v {
				t.Fatalf("%s = %v, want %v", mt.Name, mt.Value, v)
			}
		}
	}
	if found != len(want) {
		t.Fatalf("found %d/%d pool metrics", found, len(want))
	}
}

// TestZeroAllocPool pins the pool's 0-alloc steady state: submit/dequeue
// churn past the reservation — borrowing, reclaiming, measuring delay into
// an attached histogram — allocates nothing.
func TestZeroAllocPool(t *testing.T) {
	m, err := NewShared(2, SharedConfig{Reservation: 2, Burst: 8, DelayTarget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	m.SetDelayHistogram(obs.NewHistogram())
	src0, src1 := m.Source(0), m.Source(1)
	var arrival uint64
	allocs := testing.AllocsPerRun(200, func() {
		for k := 0; k < 6; k++ {
			m.Submit(0, Frame{Size: 64, Arrival: arrival})
			m.Submit(1, Frame{Size: 64, Arrival: arrival})
			arrival++
		}
		for {
			_, ok0 := src0.NextHead()
			_, ok1 := src1.NextHead()
			if !ok0 && !ok1 {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("pool steady state allocates: %v allocs/run", allocs)
	}
}
