// Package qm implements the Queue Manager of the ShareStreams endsystem
// (Figure 3): per-stream queues on the Stream processor built from
// synchronization-free circular buffers, stream descriptors holding service
// attributes, service-tag computation for fair-queuing streams, and the
// batched exchange of arrival-time offsets and scheduled stream IDs with
// the FPGA card.
//
// Producers Submit frames into per-stream rings; the card side drains each
// ring through a regblock.HeadSource adapter (the Streaming unit keeping
// per-stream card queues full). For fair-tag streams the QM stamps each
// frame's virtual start/finish tag at dequeue, using a shared self-clocked
// virtual clock across the fair streams — this is how fair-queuing maps
// onto the hardware ("per-packet service-tags do not change once they are
// computed").
package qm

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/regblock"
	"repro/internal/ringbuf"
)

// Policy selects the Queue Manager's explicit overload behavior when a
// stream's ring is full — replacing the silent ring-full drop with a
// configured, accounted choice.
type Policy uint8

const (
	// Backpressure refuses the frame and expects the producer to retry —
	// the pipeline drivers' spin-until-accepted behavior. Refused attempts
	// are counted per stream (Refused), but nothing is dropped: the
	// producer still holds the frame.
	Backpressure Policy = iota
	// RejectNew is tail drop: the arriving frame is lost, with per-stream
	// accounting; the producer must not retry it.
	RejectNew
	// DropOldest is head drop: the oldest queued frame is marked for
	// eviction (discarded by the card-side dequeue, which is the only safe
	// side of an SPSC ring to remove from) and the arriving frame retries
	// into the space the eviction frees.
	DropOldest
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case RejectNew:
		return "reject-new"
	case DropOldest:
		return "drop-oldest"
	case Backpressure:
		return "backpressure"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy resolves a policy by its String name — the inverse the
// control-plane journal header and the daemon's -policy flag share.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "backpressure":
		return Backpressure, nil
	case "reject-new":
		return RejectNew, nil
	case "drop-oldest":
		return DropOldest, nil
	default:
		return 0, fmt.Errorf("qm: unknown overload policy %q", name)
	}
}

// Verdict is the outcome of an Offer under the manager's overload policy.
type Verdict uint8

const (
	// Queued: the frame was accepted into the stream's ring.
	Queued Verdict = iota
	// Shed: the overload policy definitively dropped a frame (with
	// accounting); the producer must move on.
	Shed
	// Busy: the ring is momentarily full; the producer should retry
	// (Backpressure always; DropOldest until the eviction frees space).
	Busy
)

// Frame is one queued frame descriptor. The payload itself stays in
// processor memory; only arrival-time offsets cross the PCI bus.
type Frame struct {
	Size    int
	Arrival uint64

	// fair-queuing tags, stamped by Submit for FairTag streams ("a
	// service-tag is assigned to every incoming packet").
	tagStart  float64
	tagFinish float64
}

// Manager is the Queue Manager.
type Manager struct {
	queues []*ringbuf.Ring[Frame]
	specs  []attr.Spec

	// fair-queuing state. finish/prevFinish are producer-owned; vtime is
	// the self-clocked virtual time, read by the producer when stamping
	// tags and max-advanced by the card-side dequeue as frames enter
	// service — the one fair-queuing cell crossing the SPSC boundary, so
	// it is atomic (float64 bits in a Uint64).
	vtime      atomic.Uint64
	finish     []float64
	prevFinish float64 // scratch: finish tag before the last stamp, for rollback

	// Transfer accounting (for the PCI cost model). The two overload
	// counters answer different questions and must not be conflated:
	// Dropped counts frames definitively *lost* (shed by RejectNew,
	// evicted by DropOldest) and equals LiveDropped once the pipeline
	// quiesces; Refused counts submit *attempts* that did not enqueue a
	// frame (every Busy verdict, and each Shed — a shed attempt both
	// refuses and loses). Backpressure refusals therefore raise Refused
	// without touching Dropped: the producer still holds the frame.
	Submitted uint64
	Dequeued  uint64 //sslint:ledger
	Dropped   uint64 //sslint:ledger
	Refused   uint64

	// per-stream accounting
	perSubmitted []uint64
	perDequeued  []uint64
	perDropped   []uint64
	perRefused   []uint64
	perBytes     []uint64

	// program is the per-stream rank program, installed by SetProgram. It
	// only matters for FairTag streams: STFQ loads the head's virtual
	// *start* tag onto the card instead of its finish tag. The zero value
	// (ProgramDWCS) leaves the historical finish-tag behavior.
	program []decision.Program

	// overload policy state
	policy Policy
	// evict is per-stream head-drop debt: the producer marks the oldest
	// queued frame for discard, and the card-side dequeue (the only safe
	// remover on an SPSC ring) consumes the debt before serving a head.
	evict []atomic.Uint64 //sslint:ledger
	// satRemaining forces the next n submit attempts down the ring-full
	// path — the injected QM saturation burst. Producer-owned.
	satRemaining uint64
	// liveDrops counts frames definitively lost (shed or evicted), readable
	// from any goroutine while the pipeline runs. Backpressure refusals are
	// not live drops: the producer still holds the frame.
	liveDrops atomic.Uint64

	// shared, when non-nil, is the delay-driven shared buffer pool
	// (NewShared): per-stream logical capacity is a guaranteed reservation
	// plus credits lent from a common burst pool, so "ring full" becomes a
	// credit decision instead of a physical one. See pool.go.
	shared *pool
}

// StreamStats is one stream's Queue-Manager accounting. Dropped counts
// frames definitively lost; Refused counts submit attempts that did not
// enqueue (see Manager for the distinction).
type StreamStats struct {
	Submitted uint64
	Dequeued  uint64
	Dropped   uint64
	Refused   uint64
	Bytes     uint64 // bytes submitted
}

// New builds a manager with n per-stream queues of the given capacity
// (a power of two).
func New(n, capacity int) (*Manager, error) {
	if n < 1 {
		return nil, fmt.Errorf("qm: %d streams", n)
	}
	m := &Manager{
		queues:       make([]*ringbuf.Ring[Frame], n),
		specs:        make([]attr.Spec, n),
		finish:       make([]float64, n),
		perSubmitted: make([]uint64, n),
		perDequeued:  make([]uint64, n),
		perDropped:   make([]uint64, n),
		perRefused:   make([]uint64, n),
		perBytes:     make([]uint64, n),
		evict:        make([]atomic.Uint64, n),
		program:      make([]decision.Program, n),
	}
	for i := range m.queues {
		r, err := ringbuf.New[Frame](capacity)
		if err != nil {
			return nil, err
		}
		m.queues[i] = r
	}
	return m, nil
}

// Describe installs stream i's service attributes (its descriptor fields).
func (m *Manager) Describe(i int, spec attr.Spec) error {
	if i < 0 || i >= len(m.queues) {
		return fmt.Errorf("qm: stream %d out of range", i)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	m.specs[i] = spec
	return nil
}

// Spec returns stream i's descriptor.
func (m *Manager) Spec(i int) attr.Spec { return m.specs[i] }

// SetProgram installs stream i's rank program. The Queue Manager consults it
// only for FairTag streams: ProgramSTFQ loads virtual start tags onto the
// card, every other program keeps the finish-tag (WFQ-style) behavior.
// Stamping is unaffected — both tags are computed at Offer either way.
func (m *Manager) SetProgram(i int, p decision.Program) error {
	if i < 0 || i >= len(m.queues) {
		return fmt.Errorf("qm: stream %d out of range", i)
	}
	m.program[i] = p
	return nil
}

// Streams returns the stream count.
func (m *Manager) Streams() int { return len(m.queues) }

// SetPolicy selects the manager's overload policy. Choose it before the
// pipeline starts; the default is Backpressure, the pre-policy behavior.
func (m *Manager) SetPolicy(p Policy) { m.policy = p }

// PolicyInEffect returns the configured overload policy.
func (m *Manager) PolicyInEffect() Policy { return m.policy }

// Saturate forces the next n submit attempts down the ring-full path even
// when the ring has space — the injected QM saturation burst. Producer-side
// state: call it from the goroutine that submits.
func (m *Manager) Saturate(n uint64) { m.satRemaining += n }

// LiveDropped returns the frames definitively lost so far (shed by RejectNew
// or evicted by DropOldest). Unlike the plain counters it is safe to read
// while the pipeline runs, so supervisors can reconcile delivery targets
// against losses without waiting for quiescence.
func (m *Manager) LiveDropped() uint64 { return m.liveDrops.Load() }

// Submit queues a frame for stream i (producer side). It reports false —
// and counts a refused attempt — when the overload policy refuses the
// frame; whether the frame is also *lost* depends on the policy (see
// Offer's verdicts and the Dropped/Refused split on Manager).
func (m *Manager) Submit(i int, f Frame) bool {
	return m.Offer(i, f) == Queued
}

// Offer queues a frame for stream i under the configured overload policy,
// stamping fair-queuing tags for FairTag streams only when the frame is
// accepted. Producers switch on the verdict: Queued moves on to the next
// frame, Busy retries this one, Shed abandons it (already accounted).
func (m *Manager) Offer(i int, f Frame) Verdict {
	if i < 0 || i >= len(m.queues) {
		return Shed
	}
	full := false
	if m.satRemaining > 0 {
		m.satRemaining--
		full = true
	}
	// Under the shared pool the ring-full condition is logical: within the
	// reservation a stream admits freely, past it the frame must borrow a
	// pool credit, and a refused borrow (standing queue or exhausted pool)
	// lands on the same overload-policy paths a physically full ring would.
	borrowed := false
	if !full && m.shared != nil {
		var ok bool
		if ok, borrowed = m.shared.admit(i, m.queues[i].Len()); !ok {
			full = true
		}
	}
	if !full {
		f = m.stampTags(i, f)
		if m.queues[i].Push(f) {
			m.Submitted++
			m.perSubmitted[i]++
			m.perBytes[i] += uint64(f.Size)
			return Queued
		}
		m.unstampTags(i)
		if borrowed {
			m.shared.release(i)
		}
	}
	// Every path below failed to enqueue: one refused attempt, whatever
	// the policy. Losses are charged separately so Dropped keeps the
	// invariant Dropped == LiveDropped at quiescence.
	m.Refused++
	m.perRefused[i]++
	switch m.policy {
	case RejectNew:
		m.Dropped++
		m.perDropped[i]++
		m.liveDrops.Add(1)
		return Shed
	case DropOldest:
		// Charge the loss to the evicted head, at most one outstanding
		// eviction per ring: once debt is pending, space is already on the
		// way and further attempts just wait for it.
		if m.evict[i].CompareAndSwap(0, 1) {
			m.Dropped++
			m.perDropped[i]++
			m.liveDrops.Add(1)
		}
		return Busy
	default: // Backpressure: the producer still holds the frame — no loss.
		return Busy
	}
}

// stampTags computes the fair-queuing start/finish tags for a FairTag frame
// ("F = max(F_prev, V) + size/weight" at arrival; V itself only advances as
// packets enter service, see NextHead). Non-fair frames pass through.
func (m *Manager) stampTags(i int, f Frame) Frame {
	if m.specs[i].Class != attr.FairTag {
		return f
	}
	start := m.finish[i]
	if v := m.virtualTime(); v > start {
		start = v
	}
	w := float64(m.specs[i].Weight)
	m.prevFinish = m.finish[i]
	m.finish[i] = start + float64(f.Size)/w
	f.tagStart = start
	f.tagFinish = m.finish[i]
	return f
}

// virtualTime loads the shared self-clocked virtual time. Tags are always
// non-negative, so the float64 bit pattern round-trips exactly.
func (m *Manager) virtualTime() float64 {
	return math.Float64frombits(m.vtime.Load())
}

// advanceVirtualTime max-advances the virtual clock to t. The CAS loop
// keeps the advance monotone even though producer stamping and card-side
// dequeue race on the clock.
func (m *Manager) advanceVirtualTime(t float64) {
	for {
		cur := m.vtime.Load()
		if math.Float64frombits(cur) >= t {
			return
		}
		if m.vtime.CompareAndSwap(cur, math.Float64bits(t)) {
			return
		}
	}
}

// unstampTags rolls back the finish-tag advance of a stamp whose push was
// refused, so a shed or retried frame cannot skew the stream's virtual
// finish time ("service-tags do not change once computed" — but a frame
// that never entered the queue was never tagged).
func (m *Manager) unstampTags(i int) {
	if m.specs[i].Class != attr.FairTag {
		return
	}
	m.finish[i] = m.prevFinish
}

// Stats returns stream i's accounting; an out-of-range index returns the
// zero value, mirroring Submit's tolerance of bad stream indices.
func (m *Manager) Stats(i int) StreamStats {
	if i < 0 || i >= len(m.queues) {
		return StreamStats{}
	}
	return StreamStats{
		Submitted: m.perSubmitted[i],
		Dequeued:  m.perDequeued[i],
		Dropped:   m.perDropped[i],
		Refused:   m.perRefused[i],
		Bytes:     m.perBytes[i],
	}
}

// Totals returns the accounting summed across every stream — the per-shard
// Queue-Manager view the sharded endsystem aggregator merges.
func (m *Manager) Totals() StreamStats {
	var t StreamStats
	for i := range m.queues {
		t.Submitted += m.perSubmitted[i]
		t.Dequeued += m.perDequeued[i]
		t.Dropped += m.perDropped[i]
		t.Refused += m.perRefused[i]
		t.Bytes += m.perBytes[i]
	}
	return t
}

// Backlog returns stream i's queued frame count (0 when i is out of range).
func (m *Manager) Backlog(i int) int {
	if i < 0 || i >= len(m.queues) {
		return 0
	}
	return m.queues[i].Len()
}

// Source returns the card-side head source for stream i: each NextHead
// dequeues one frame, stamping fair-queuing tags when the descriptor class
// is FairTag. The returned adapter is the model counterpart of the
// Streaming unit's per-stream card queue.
func (m *Manager) Source(i int) regblock.HeadSource {
	return &source{m: m, stream: i}
}

type source struct {
	m      *Manager
	stream int
}

// NextHead implements regblock.HeadSource. Dequeuing a fair-tag frame to
// the card advances the shared virtual clock to the frame's start tag
// (self-clocked: V follows packets as they enter service), which re-anchors
// streams that return from idle.
func (s *source) NextHead() (regblock.Head, bool) {
	m := s.m
	// Consume any head-drop debt first: DropOldest marks the oldest queued
	// frame for discard, and the card side is the only safe remover.
	for m.evict[s.stream].Load() > 0 {
		if _, ok := m.queues[s.stream].Pop(); !ok {
			break
		}
		m.evict[s.stream].Add(^uint64(0))
		if m.shared != nil {
			m.shared.reclaim(s.stream) // an eviction shrinks the lent backlog too
		}
	}
	f, ok := m.queues[s.stream].Pop()
	if !ok {
		return regblock.Head{}, false
	}
	m.Dequeued++
	m.perDequeued[s.stream]++
	if m.shared != nil {
		// Return a lent credit if one is outstanding, and publish the head's
		// measured queueing delay (modeled service rounds) for the producer's
		// next lending decision.
		m.shared.reclaim(s.stream)
		m.shared.measure(s.stream, m.Dequeued/uint64(len(m.queues)), f.Arrival)
	}
	h := regblock.Head{Arrival: f.Arrival}
	if m.specs[s.stream].Class == attr.FairTag {
		// WFQ-style programs schedule on finish tags; STFQ on start tags
		// (bounding the head-of-line penalty a large in-service frame
		// imposes). The tag choice is the *only* datapath difference
		// between the two programs.
		if m.program[s.stream] == decision.ProgramSTFQ {
			h.Tag = uint64(f.tagStart)
		} else {
			h.Tag = uint64(f.tagFinish)
		}
		m.advanceVirtualTime(f.tagStart)
	}
	return h, true
}

// ResetTags clears stream i's fair-queuing finish tag, so the slot's next
// occupant anchors its first stamp at the shared virtual time instead of
// inheriting the previous stream's virtual finish. Call it only when the
// slot is vacated at a fenced quiescent point (live eviction, after Drain):
// resetting a slot that still holds tagged frames would let later stamps
// run behind queued ones. The shared virtual clock itself is untouched —
// it belongs to all fair streams, not to one slot.
func (m *Manager) ResetTags(i int) {
	if i < 0 || i >= len(m.queues) {
		return
	}
	m.finish[i] = 0
}

// EvictDebt returns stream i's pending head-drop debt: frames already
// accounted as Dropped by the DropOldest policy but still physically queued
// until the card-side dequeue discards them. Control planes that reconcile
// conservation at epoch fences subtract it from the physical backlog —
// backlog(i) − EvictDebt(i) is the in-flight frame count that still owes
// delivery. Safe to read live: the cell is atomic.
func (m *Manager) EvictDebt(i int) uint64 {
	if i < 0 || i >= len(m.queues) {
		return 0
	}
	return m.evict[i].Load()
}

// Drain removes stream i's queued frames, calling fn for each salvageable
// one, and returns how many fn saw. Frames owed to head-drop eviction debt
// are discarded (their loss was already accounted at Offer time), not
// salvaged. Drain bypasses the dequeue accounting: it is the supervisor's
// salvage path when a shard is declared dead and its backlog is re-submitted
// to a surviving shard, and it is only safe once both the producer and the
// card side of this manager have stopped.
func (m *Manager) Drain(i int, fn func(Frame)) int {
	if i < 0 || i >= len(m.queues) {
		return 0
	}
	salvaged := 0
	for {
		f, ok := m.queues[i].Pop()
		if !ok {
			return salvaged
		}
		if m.shared != nil {
			m.shared.reclaim(i) // every departure returns lent capacity
		}
		if m.evict[i].Load() > 0 {
			m.evict[i].Add(^uint64(0))
			continue
		}
		if fn != nil {
			fn(f)
		}
		salvaged++
	}
}

// BatchWords returns how many 32-bit words a batch of n arrival-time
// offsets occupies on the bus (one 16-bit offset per frame, two per word).
func BatchWords(n int) int { return (n + 1) / 2 }
