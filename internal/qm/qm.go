// Package qm implements the Queue Manager of the ShareStreams endsystem
// (Figure 3): per-stream queues on the Stream processor built from
// synchronization-free circular buffers, stream descriptors holding service
// attributes, service-tag computation for fair-queuing streams, and the
// batched exchange of arrival-time offsets and scheduled stream IDs with
// the FPGA card.
//
// Producers Submit frames into per-stream rings; the card side drains each
// ring through a regblock.HeadSource adapter (the Streaming unit keeping
// per-stream card queues full). For fair-tag streams the QM stamps each
// frame's virtual start/finish tag at dequeue, using a shared self-clocked
// virtual clock across the fair streams — this is how fair-queuing maps
// onto the hardware ("per-packet service-tags do not change once they are
// computed").
package qm

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/regblock"
	"repro/internal/ringbuf"
)

// Frame is one queued frame descriptor. The payload itself stays in
// processor memory; only arrival-time offsets cross the PCI bus.
type Frame struct {
	Size    int
	Arrival uint64

	// fair-queuing tags, stamped by Submit for FairTag streams ("a
	// service-tag is assigned to every incoming packet").
	tagStart  float64
	tagFinish float64
}

// Manager is the Queue Manager.
type Manager struct {
	queues []*ringbuf.Ring[Frame]
	specs  []attr.Spec

	// fair-queuing state (shared across FairTag streams)
	vtime  float64
	finish []float64

	// transfer accounting (for the PCI cost model)
	Submitted uint64
	Dequeued  uint64
	Dropped   uint64

	// per-stream accounting
	perSubmitted []uint64
	perDequeued  []uint64
	perDropped   []uint64
	perBytes     []uint64
}

// StreamStats is one stream's Queue-Manager accounting.
type StreamStats struct {
	Submitted uint64
	Dequeued  uint64
	Dropped   uint64
	Bytes     uint64 // bytes submitted
}

// New builds a manager with n per-stream queues of the given capacity
// (a power of two).
func New(n, capacity int) (*Manager, error) {
	if n < 1 {
		return nil, fmt.Errorf("qm: %d streams", n)
	}
	m := &Manager{
		queues:       make([]*ringbuf.Ring[Frame], n),
		specs:        make([]attr.Spec, n),
		finish:       make([]float64, n),
		perSubmitted: make([]uint64, n),
		perDequeued:  make([]uint64, n),
		perDropped:   make([]uint64, n),
		perBytes:     make([]uint64, n),
	}
	for i := range m.queues {
		r, err := ringbuf.New[Frame](capacity)
		if err != nil {
			return nil, err
		}
		m.queues[i] = r
	}
	return m, nil
}

// Describe installs stream i's service attributes (its descriptor fields).
func (m *Manager) Describe(i int, spec attr.Spec) error {
	if i < 0 || i >= len(m.queues) {
		return fmt.Errorf("qm: stream %d out of range", i)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	m.specs[i] = spec
	return nil
}

// Spec returns stream i's descriptor.
func (m *Manager) Spec(i int) attr.Spec { return m.specs[i] }

// Streams returns the stream count.
func (m *Manager) Streams() int { return len(m.queues) }

// Submit queues a frame for stream i (producer side), stamping fair-queuing
// tags on arrival for FairTag streams. It reports false — and counts a drop
// — when the ring is full.
func (m *Manager) Submit(i int, f Frame) bool {
	if i < 0 || i >= len(m.queues) {
		return false
	}
	if m.specs[i].Class == attr.FairTag {
		// F = max(F_prev, V) + size/weight at arrival; V itself only
		// advances as packets enter service (see NextHead).
		start := m.finish[i]
		if m.vtime > start {
			start = m.vtime
		}
		w := float64(m.specs[i].Weight)
		m.finish[i] = start + float64(f.Size)/w
		f.tagStart = start
		f.tagFinish = m.finish[i]
	}
	if !m.queues[i].Push(f) {
		m.Dropped++
		m.perDropped[i]++
		return false
	}
	m.Submitted++
	m.perSubmitted[i]++
	m.perBytes[i] += uint64(f.Size)
	return true
}

// Stats returns stream i's accounting; an out-of-range index returns the
// zero value, mirroring Submit's tolerance of bad stream indices.
func (m *Manager) Stats(i int) StreamStats {
	if i < 0 || i >= len(m.queues) {
		return StreamStats{}
	}
	return StreamStats{
		Submitted: m.perSubmitted[i],
		Dequeued:  m.perDequeued[i],
		Dropped:   m.perDropped[i],
		Bytes:     m.perBytes[i],
	}
}

// Totals returns the accounting summed across every stream — the per-shard
// Queue-Manager view the sharded endsystem aggregator merges.
func (m *Manager) Totals() StreamStats {
	var t StreamStats
	for i := range m.queues {
		t.Submitted += m.perSubmitted[i]
		t.Dequeued += m.perDequeued[i]
		t.Dropped += m.perDropped[i]
		t.Bytes += m.perBytes[i]
	}
	return t
}

// Backlog returns stream i's queued frame count (0 when i is out of range).
func (m *Manager) Backlog(i int) int {
	if i < 0 || i >= len(m.queues) {
		return 0
	}
	return m.queues[i].Len()
}

// Source returns the card-side head source for stream i: each NextHead
// dequeues one frame, stamping fair-queuing tags when the descriptor class
// is FairTag. The returned adapter is the model counterpart of the
// Streaming unit's per-stream card queue.
func (m *Manager) Source(i int) regblock.HeadSource {
	return &source{m: m, stream: i}
}

type source struct {
	m      *Manager
	stream int
}

// NextHead implements regblock.HeadSource. Dequeuing a fair-tag frame to
// the card advances the shared virtual clock to the frame's start tag
// (self-clocked: V follows packets as they enter service), which re-anchors
// streams that return from idle.
func (s *source) NextHead() (regblock.Head, bool) {
	m := s.m
	f, ok := m.queues[s.stream].Pop()
	if !ok {
		return regblock.Head{}, false
	}
	m.Dequeued++
	m.perDequeued[s.stream]++
	h := regblock.Head{Arrival: f.Arrival}
	if m.specs[s.stream].Class == attr.FairTag {
		h.Tag = uint64(f.tagFinish)
		if f.tagStart > m.vtime {
			m.vtime = f.tagStart
		}
	}
	return h, true
}

// BatchWords returns how many 32-bit words a batch of n arrival-time
// offsets occupies on the bus (one 16-bit offset per frame, two per word).
func BatchWords(n int) int { return (n + 1) / 2 }
