package qm

import (
	"testing"

	"repro/internal/attr"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16); err == nil {
		t.Error("accepted zero streams")
	}
	if _, err := New(2, 3); err == nil {
		t.Error("accepted non-power-of-two capacity")
	}
}

func TestDescribeValidation(t *testing.T) {
	m, err := New(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Describe(5, attr.Spec{Class: attr.EDF, Period: 1}); err == nil {
		t.Error("accepted out-of-range stream")
	}
	if err := m.Describe(0, attr.Spec{Class: attr.EDF}); err == nil {
		t.Error("accepted invalid spec")
	}
	spec := attr.Spec{Class: attr.EDF, Period: 3}
	if err := m.Describe(0, spec); err != nil {
		t.Fatal(err)
	}
	if m.Spec(0) != spec {
		t.Error("Spec accessor broken")
	}
	if m.Streams() != 2 {
		t.Error("Streams accessor broken")
	}
}

func TestSubmitAndSource(t *testing.T) {
	m, _ := New(2, 4)
	if err := m.Describe(0, attr.Spec{Class: attr.EDF, Period: 1}); err != nil {
		t.Fatal(err)
	}
	src := m.Source(0)
	if _, ok := src.NextHead(); ok {
		t.Fatal("empty queue yielded a head")
	}
	for k := 0; k < 4; k++ {
		if !m.Submit(0, Frame{Size: 100, Arrival: uint64(k)}) {
			t.Fatalf("submit %d failed", k)
		}
	}
	if m.Submit(0, Frame{Size: 100}) {
		t.Fatal("submit into full ring succeeded")
	}
	if m.Refused != 1 || m.Submitted != 4 {
		t.Fatalf("counters: %d refused %d submitted", m.Refused, m.Submitted)
	}
	if m.Dropped != 0 {
		t.Fatalf("a backpressure refusal lost nothing, yet Dropped=%d", m.Dropped)
	}
	if m.Backlog(0) != 4 {
		t.Fatalf("backlog = %d", m.Backlog(0))
	}
	for k := 0; k < 4; k++ {
		h, ok := src.NextHead()
		if !ok || h.Arrival != uint64(k) {
			t.Fatalf("head %d: ok=%v arrival=%d", k, ok, h.Arrival)
		}
	}
	if m.Dequeued != 4 {
		t.Fatalf("dequeued = %d", m.Dequeued)
	}
	if m.Submit(-1, Frame{Size: 1}) {
		t.Fatal("submit to negative stream succeeded")
	}
}

func TestFairTagStamping(t *testing.T) {
	m, _ := New(2, 16)
	if err := m.Describe(0, attr.Spec{Class: attr.FairTag, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Describe(1, attr.Spec{Class: attr.FairTag, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		m.Submit(0, Frame{Size: 100, Arrival: uint64(k)})
		m.Submit(1, Frame{Size: 100, Arrival: uint64(k)})
	}
	s0, s1 := m.Source(0), m.Source(1)
	h0a, _ := s0.NextHead()
	h1a, _ := s1.NextHead()
	// Weight-1 stream: finish = 100; weight-2: finish = 50.
	if h0a.Tag != 100 || h1a.Tag != 50 {
		t.Fatalf("first tags = %d/%d, want 100/50", h0a.Tag, h1a.Tag)
	}
	// Tags advance per stream: next finishes 200 and 100.
	h0b, _ := s0.NextHead()
	h1b, _ := s1.NextHead()
	if h0b.Tag != 200 || h1b.Tag != 100 {
		t.Fatalf("second tags = %d/%d, want 200/100", h0b.Tag, h1b.Tag)
	}
	// The weight-2 stream accrues tags at half the rate: after equal
	// packet counts its finish tag trails the weight-1 stream's.
	h0c, _ := s0.NextHead()
	h1c, _ := s1.NextHead()
	if h1c.Tag >= h0c.Tag {
		t.Fatalf("weight-2 tag %d not behind weight-1 tag %d", h1c.Tag, h0c.Tag)
	}
}

func TestNonFairStreamsGetNoTag(t *testing.T) {
	m, _ := New(1, 16)
	m.Describe(0, attr.Spec{Class: attr.EDF, Period: 2})
	m.Submit(0, Frame{Size: 500, Arrival: 7})
	h, ok := m.Source(0).NextHead()
	if !ok || h.Tag != 0 || h.Arrival != 7 {
		t.Fatalf("head = %+v ok=%v", h, ok)
	}
}

func TestBatchWords(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 32: 16, 33: 17}
	for n, want := range cases {
		if got := BatchWords(n); got != want {
			t.Errorf("BatchWords(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPerStreamStats(t *testing.T) {
	m, _ := New(2, 4)
	m.Describe(0, attr.Spec{Class: attr.EDF, Period: 1})
	m.Describe(1, attr.Spec{Class: attr.EDF, Period: 1})
	for k := 0; k < 4; k++ {
		m.Submit(0, Frame{Size: 100, Arrival: uint64(k)})
	}
	m.Submit(0, Frame{Size: 100}) // refused (backpressure: not lost)
	m.Submit(1, Frame{Size: 250})
	src := m.Source(0)
	src.NextHead()
	src.NextHead()
	s0, s1 := m.Stats(0), m.Stats(1)
	if s0.Submitted != 4 || s0.Refused != 1 || s0.Dropped != 0 || s0.Dequeued != 2 || s0.Bytes != 400 {
		t.Fatalf("stream 0 stats = %+v", s0)
	}
	if s1.Submitted != 1 || s1.Bytes != 250 || s1.Dequeued != 0 {
		t.Fatalf("stream 1 stats = %+v", s1)
	}
}

func TestStatsBacklogOutOfRangeAndTotals(t *testing.T) {
	m, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Describe(0, attr.Spec{Class: attr.EDF, Period: 2}); err != nil {
		t.Fatal(err)
	}
	m.Submit(0, Frame{Size: 100, Arrival: 0})
	m.Submit(0, Frame{Size: 200, Arrival: 1})
	m.Submit(1, Frame{Size: 50, Arrival: 0})
	for _, i := range []int{-1, 2, 99} {
		if s := m.Stats(i); s != (StreamStats{}) {
			t.Errorf("Stats(%d) = %+v, want zero", i, s)
		}
		if b := m.Backlog(i); b != 0 {
			t.Errorf("Backlog(%d) = %d, want 0", i, b)
		}
	}
	tot := m.Totals()
	if tot.Submitted != 3 || tot.Bytes != 350 || tot.Dropped != 0 {
		t.Errorf("Totals = %+v", tot)
	}
	if m.Backlog(0) != 2 || m.Backlog(1) != 1 {
		t.Errorf("backlogs = %d, %d", m.Backlog(0), m.Backlog(1))
	}
}
