package qm

// Saturation guards: the Queue Manager's accounting must stay consistent
// when rings fill, drops accumulate, and callers hand it out-of-range
// stream indices.

import (
	"testing"

	"repro/internal/attr"
)

// TestRingSaturationAccounting fills a ring past capacity and checks every
// counter: submissions stop at capacity, the overflow lands in Refused (the
// default Backpressure policy loses nothing), the per-stream and total views
// agree, and draining restores consistency.
func TestRingSaturationAccounting(t *testing.T) {
	const cap, extra = 8, 5
	m, err := New(2, cap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cap+extra; i++ {
		ok := m.Submit(0, Frame{Size: 100, Arrival: uint64(i)})
		if wantOK := i < cap; ok != wantOK {
			t.Fatalf("submit %d accepted=%v, want %v", i, ok, wantOK)
		}
	}
	st := m.Stats(0)
	if st.Submitted != cap || st.Refused != extra || st.Dequeued != 0 {
		t.Fatalf("stats = %+v, want %d submitted / %d refused / 0 dequeued", st, cap, extra)
	}
	if st.Dropped != 0 {
		t.Fatalf("backpressure refusals lost nothing, yet stats = %+v", st)
	}
	if st.Bytes != cap*100 {
		t.Fatalf("bytes = %d, want %d (drops must not charge bytes)", st.Bytes, cap*100)
	}
	if m.Backlog(0) != cap {
		t.Fatalf("backlog = %d, want full ring %d", m.Backlog(0), cap)
	}
	tot := m.Totals()
	if tot != st {
		t.Fatalf("totals %+v != single-stream stats %+v", tot, st)
	}
	if m.Submitted != cap || m.Refused != extra || m.Dropped != 0 {
		t.Fatalf("aggregate fields %d/%d/%d, want %d/%d/0", m.Submitted, m.Refused, m.Dropped, cap, extra)
	}

	// Drain one and the freed slot accepts exactly one more frame.
	src := m.Source(0)
	if _, ok := src.NextHead(); !ok {
		t.Fatal("full ring refused a dequeue")
	}
	if !m.Submit(0, Frame{Size: 100}) {
		t.Fatal("freed slot refused a submit")
	}
	if m.Submit(0, Frame{Size: 100}) {
		t.Fatal("ring accepted past capacity after refill")
	}
	tot = m.Totals()
	if tot.Submitted != cap+1 || tot.Refused != extra+1 || tot.Dequeued != 1 {
		t.Fatalf("after drain/refill totals = %+v", tot)
	}

	// Full drain: dequeues match submissions and the backlog hits zero.
	for {
		if _, ok := src.NextHead(); !ok {
			break
		}
	}
	tot = m.Totals()
	if tot.Dequeued != tot.Submitted {
		t.Fatalf("drained totals = %+v, want dequeued == submitted", tot)
	}
	if m.Backlog(0) != 0 {
		t.Fatalf("backlog = %d after drain, want 0", m.Backlog(0))
	}
}

// TestOutOfRangeIndices: bad stream indices are tolerated uniformly — false
// from Submit without counting a drop, zero values from the read side.
func TestOutOfRangeIndices(t *testing.T) {
	m, err := New(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 1, 1 << 20} {
		if m.Submit(i, Frame{Size: 1}) {
			t.Fatalf("Submit(%d) accepted", i)
		}
		if st := m.Stats(i); st != (StreamStats{}) {
			t.Fatalf("Stats(%d) = %+v, want zero", i, st)
		}
		if m.Backlog(i) != 0 {
			t.Fatalf("Backlog(%d) != 0", i)
		}
	}
	// A rejected index is neither a drop nor a refused attempt: there is no
	// stream to charge it to.
	if m.Dropped != 0 || m.Refused != 0 || m.Totals() != (StreamStats{}) {
		t.Fatalf("out-of-range submits disturbed accounting: %+v", m.Totals())
	}
	if err := m.Describe(1, attr.Spec{Class: attr.EDF, Period: 1}); err == nil {
		t.Fatal("Describe out of range must fail")
	}
}
