package regblock

import (
	"testing"

	"repro/internal/attr"
)

func guardSpec(priority, guard uint16) attr.Spec {
	return attr.Spec{Class: attr.StaticPriority, Priority: priority, Guard: guard}
}

// TestGuardBoostsStarvedHead walks a guarded static-priority slot through a
// starvation episode: the head keeps its priority until Guard ticks past its
// arrival, is boosted to deadline 0 exactly then, stays boosted until
// served, and its successor loads un-boosted.
func TestGuardBoostsStarvedHead(t *testing.T) {
	src := &sliceSource{heads: []Head{{Arrival: 10}, {Arrival: 12}}}
	b, err := New(1, guardSpec(40, 8), src)
	if err != nil {
		t.Fatal(err)
	}
	b.Load(10)
	if b.Out().Deadline != 40 || b.Deadline64() != 40 {
		t.Fatalf("loaded priority: %d/%d, want 40", b.Out().Deadline, b.Deadline64())
	}
	for now := uint64(11); now < 18; now++ { // waited < Guard: no boost
		b.Refill(now)
		if b.Out().Deadline != 40 {
			t.Fatalf("boost fired early at now=%d", now)
		}
	}
	gen := b.Gen()
	b.Refill(18) // arrival 10 + guard 8
	if b.Out().Deadline != 0 || b.Deadline64() != 0 {
		t.Fatalf("boost missing at the guard horizon: %d/%d", b.Out().Deadline, b.Deadline64())
	}
	if b.Gen() == gen {
		t.Fatal("boost must bump the mutation generation (the key changed)")
	}
	key := b.Key()
	gen = b.Gen()
	b.Refill(19) // already boosted: idempotent, no re-key churn
	if b.Gen() != gen || b.Key() != key {
		t.Fatal("repeated guard checks on a boosted head must not mutate")
	}
	b.Service(false, true)
	if b.Out().Deadline != 40 || b.Deadline64() != 40 {
		t.Fatalf("successor must load un-boosted: %d/%d, want 40", b.Out().Deadline, b.Deadline64())
	}
}

// TestGuardDisabledAndWrongClass checks the guard is inert when Guard is 0,
// for priority-0 streams (already at the front), and that Validate rejects
// guards on other classes and guarded priorities outside the serial window.
func TestGuardDisabledAndWrongClass(t *testing.T) {
	src := &periodicSource{step: 1}
	b, err := New(0, guardSpec(7, 0), src)
	if err != nil {
		t.Fatal(err)
	}
	b.Load(0)
	b.Refill(1 << 20)
	if b.Out().Deadline != 7 {
		t.Fatalf("guard-disabled slot boosted: %d", b.Out().Deadline)
	}

	zero, err := New(0, guardSpec(0, 4), &periodicSource{step: 1})
	if err != nil {
		t.Fatal(err)
	}
	zero.Load(0)
	gen := zero.Gen()
	zero.Refill(100)
	if zero.Gen() != gen {
		t.Fatal("priority-0 head needs no boost; the check must not mutate")
	}

	if err := (attr.Spec{Class: attr.EDF, Period: 5, Guard: 3}).Validate(); err == nil {
		t.Error("Validate accepted a guard on an EDF stream")
	}
	if err := (attr.Spec{Class: attr.StaticPriority, Priority: 1 << 15, Guard: 3}).Validate(); err == nil {
		t.Error("Validate accepted a guarded priority at 2^15")
	}
	if err := (attr.Spec{Class: attr.StaticPriority, Priority: 1 << 15}).Validate(); err != nil {
		t.Errorf("unguarded high priority must stay legal: %v", err)
	}
}
