// Package regblock implements the ShareStreams Register Base block, also
// called a Stream-slot: the per-stream state store and attribute-adjustment
// logic of the hardware architecture (Figure 4 of the paper).
//
// A Register Base block holds one stream's service attributes in CLB
// flip-flops (deadline, loss numerator/denominator, arrival time, slot ID),
// supplies them to the Decision-block network each SCHEDULE cycle, and —
// for window-constrained disciplines — applies winner/loser adjustments
// every PRIORITY_UPDATE cycle when the winning slot ID is circulated back.
// Per-slot performance counters (missed deadlines, violations, services)
// live here too, as in the hardware.
//
// Disciplines map onto the slot through its attribute class (see attr.Class):
//
//   - Window-constrained (DWCS): deadlines are synthesized — each consumed
//     packet's successor is due one request period later — the window
//     registers adjust every decision cycle, and an expired head is dropped
//     (the loss the window accounting tolerates).
//   - EDF: the same deadline synthesis, window logic quiesced. Expired heads
//     are NOT dropped: they stay queued and are eventually transmitted late,
//     while the slot's missed-deadline counter increments once per decision
//     cycle in which the due stream lost ("others with conflicting deadlines
//     will increment their missed deadline counters by one", §5.1). This is
//     the Table 3 accounting.
//   - Static-priority: the deadline field holds a time-invariant priority.
//   - Fair-tag: the deadline field holds the per-packet service tag computed
//     by the Queue Manager; PRIORITY_UPDATE is bypassed ("the packet
//     priority does not change after each packet is queued").
//
// # Time
//
// The datapath fields are 16-bit, exactly as in the Virtex-I prototype, and
// all Decision-block ordering happens on the wrapped values (live heads stay
// within the serial-number window of each other). For *instrumentation* —
// lateness of a transmission, expiry of a loser — the model keeps 64-bit
// shadow copies of the deadline and arrival, because an overloaded EDF
// backlog grows staler than the 16-bit half-window over the paper's
// 64000-cycle runs and the performance counters must not wrap with it.
//
// Aggregation (§4.3, §5.1): a slot may stand for many streamlets; the slot
// then carries the aggregate's QoS state while the Stream processor
// round-robins among streamlet queues (package streamlet).
package regblock

import (
	"fmt"

	"repro/internal/attr"
)

// Head describes the next packet a slot's queue offers: its arrival time
// and, for fair-tag slots, the Queue-Manager-computed service tag. Times are
// 64-bit virtual; the slot truncates them onto the 16-bit datapath fields.
type Head struct {
	Arrival uint64
	Tag     uint64 // service tag; used only by attr.FairTag slots
}

// HeadSource feeds a Register Base block with successive packet heads — the
// model counterpart of the Streaming unit keeping per-stream card queues
// full. NextHead reports false when the queue is currently empty, which
// invalidates the slot until Refill.
type HeadSource interface {
	NextHead() (Head, bool)
}

// Counters are the slot's hardware performance counters.
type Counters struct {
	Wins       uint64 // decision cycles this slot's stream was the circulated winner
	Services   uint64 // packets transmitted from this slot (block mode services every member)
	Met        uint64 // packets transmitted by their deadline
	Missed     uint64 // missed-deadline count (late transmissions + per-cycle loser ticks + drops)
	Drops      uint64 // packets dropped at deadline expiry (window-constrained class)
	Violations uint64 // window-constraint violations (a miss while the tolerance was exhausted)
}

// Block is one Register Base block. Methods are invoked by the scheduler
// control unit in FSM order (LOAD, then SCHEDULE/PRIORITY_UPDATE cycles), so
// the struct itself needs no internal two-phase machinery.
type Block struct {
	spec attr.Spec
	src  HeadSource

	cur  attr.Attributes // the 16-bit attribute word presented to the network
	d64  uint64          // shadow deadline (virtual time)
	a64  uint64          // shadow arrival (virtual time)
	orig attr.Constraint // original window-constraint, reloaded on window completion

	// key is cur's packed rank key (attr.Key) against keyRef, maintained at
	// every attribute mutation — the hardware analogue of the flattened
	// comparator word latched next to the attribute registers. The scheduler
	// reads it each SCHEDULE cycle instead of re-packing all N words.
	// keyConst caches the constraint fields (attr.KeyConstraint of the
	// current window registers) so the per-head rekey skips the rank-table
	// lookup; it is refreshed whenever LossNum/LossDen change.
	key      attr.Key
	keyConst attr.Key
	keyRef   attr.Time16
	gen      uint32 // bumped on every attribute/key mutation (see Gen)

	Counters Counters
}

// New builds a Register Base block for slot id serving spec, drawing packet
// heads from src. The slot starts empty (invalid) until Load.
func New(id attr.SlotID, spec attr.Spec, src HeadSource) (*Block, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("regblock: slot %d: %w", id, err)
	}
	if src == nil {
		return nil, fmt.Errorf("regblock: slot %d: nil head source", id)
	}
	b := &Block{
		spec: spec,
		src:  src,
		orig: spec.Constraint,
		cur: attr.Attributes{
			Slot:    id,
			LossNum: spec.Constraint.Num,
			LossDen: spec.Constraint.Den,
		},
	}
	b.rekeyConstraint()
	return b, nil
}

// Slot returns the slot ID.
func (b *Block) Slot() attr.SlotID { return b.cur.Slot }

// Spec returns the stream specification the slot was admitted with.
func (b *Block) Spec() attr.Spec { return b.spec }

// Out returns the slot's current attribute word — the value driven onto the
// Decision-block input bus this cycle.
func (b *Block) Out() attr.Attributes { return b.cur }

// Valid reports whether the slot currently holds a backlogged stream.
func (b *Block) Valid() bool { return b.cur.Valid }

// Key returns the slot's cached packed rank key — cur.Key(ref) for the
// reference last installed with SetKeyRef. It is recomputed only when the
// attribute word mutates (PRIORITY_UPDATE / INGEST), never per compare.
func (b *Block) Key() attr.Key { return b.key }

// SetKeyRef installs the key-normalization reference and rekeys. The
// scheduler refreshes it epochally (every few thousand cycles) so live
// deadlines stay inside the monotonic window of the packed key; any
// reference is *correct* (decision.FastOrder's serial-window guard falls
// back to the cascade outside the window), a good one is merely faster.
func (b *Block) SetKeyRef(ref attr.Time16) {
	b.keyRef = ref
	b.rekey()
}

// rekey repacks the rank key after a cur mutation that left the window
// registers alone — pure shifts around the cached constraint part.
func (b *Block) rekey() {
	b.key = b.cur.KeyWith(b.keyConst, b.keyRef)
	b.gen++
}

// Gen returns the slot's mutation generation: it changes whenever the
// attribute word or its key does, so the scheduler can skip relatching
// unchanged slots onto the network bus between decision cycles. (Every
// mutation path ends in rekey, which bumps it.)
func (b *Block) Gen() uint32 { return b.gen }

// rekeyConstraint refreshes the cached constraint fields and the key after a
// window-register mutation.
func (b *Block) rekeyConstraint() {
	b.keyConst = attr.KeyConstraint(b.cur.LossNum, b.cur.LossDen)
	b.rekey()
}

// Deadline64 returns the shadow (unwrapped) deadline of the current head.
func (b *Block) Deadline64() uint64 { return b.d64 }

// Arrival64 returns the shadow (unwrapped) arrival of the current head.
func (b *Block) Arrival64() uint64 { return b.a64 }

// setHead installs a head with the given shadow deadline, refreshing the
// 16-bit datapath fields.
func (b *Block) setHead(h Head, deadline uint64) {
	b.a64 = h.Arrival
	b.d64 = deadline
	b.cur.Valid = true
	b.cur.Arrival = attr.WrapTime(h.Arrival)
	b.cur.Deadline = attr.WrapTime(deadline)
	b.rekey()
}

// deadlineFor computes a head's shadow deadline given the predecessor's.
// For the synthesis classes the successor is due one request period after
// the predecessor — or, if the stream went idle (the next arrival is past
// the old deadline), one period after its arrival (re-anchoring).
func (b *Block) deadlineFor(h Head, prev uint64) uint64 {
	switch b.spec.Class {
	case attr.StaticPriority:
		return uint64(b.spec.Priority)
	case attr.FairTag:
		return h.Tag
	default:
		d := prev + uint64(b.spec.Period)
		if anchored := h.Arrival + uint64(b.spec.Period); anchored > d {
			d = anchored
		}
		return d
	}
}

// Load performs the control unit's LOAD state for this slot: pull the first
// head from the source and anchor the deadline one request period after its
// arrival. Empty sources leave the slot invalid.
func (b *Block) Load(now uint64) {
	h, ok := b.src.NextHead()
	if !ok {
		b.cur.Valid = false
		b.rekey()
		return
	}
	_ = now
	b.setHead(h, b.deadlineFor(h, h.Arrival))
}

// advance consumes the current head and loads its successor.
func (b *Block) advance() {
	h, ok := b.src.NextHead()
	if !ok {
		b.cur.Valid = false
		b.rekey()
		return
	}
	b.setHead(h, b.deadlineFor(h, b.d64))
}

// Service consumes the head as transmitted. late reports whether the caller
// (which knows transmission timing and, in block mode, the within-block
// rank) determined the packet went out past its deadline. The window
// winner-adjustment applies only when this slot's ID was the one circulated
// in PRIORITY_UPDATE (circulated=true) and the class is window-constrained.
func (b *Block) Service(late, circulated bool) {
	if !b.cur.Valid {
		return
	}
	b.Counters.Services++
	if late {
		b.Counters.Missed++
	} else {
		b.Counters.Met++
	}
	if circulated {
		b.Counters.Wins++
		if b.spec.Class == attr.WindowConstrained {
			b.winnerWindowAdjust()
		}
	}
	b.advance()
}

// winnerWindowAdjust applies the DWCS served-before-deadline rules to the
// current window-constraint registers x'/y' (x' = LossNum, y' = LossDen):
//
//	if y' > x'                 { y'-- }       // one fewer slot left in the window
//	else if x' == y' && x' > 0 { x'--; y'-- } // remaining slots may all be lost
//	if x' == 0 && y' == 0      { reload original } // window complete
//
// winnerWindowAdjust refreshes the cached constraint part but does not
// repack the full key: its only caller (Service) advances the head right
// after, and advance rekeys on both of its paths.
func (b *Block) winnerWindowAdjust() {
	b.cur.LossNum, b.cur.LossDen = previewWinnerWindow(b.cur.LossNum, b.cur.LossDen, b.orig)
	b.keyConst = attr.KeyConstraint(b.cur.LossNum, b.cur.LossDen)
}

// ExpireCheck performs the loser-side PRIORITY_UPDATE at virtual time now
// (the next transmission opportunity): if the head's deadline has passed
// (deadline < now), the missed-deadline counter increments. What happens to
// the head depends on the class:
//
//   - Window-constrained: the packet is dropped — the loss the window
//     tolerates — and the DWCS missed-deadline rules adjust the registers:
//
//     if x' > 0 { x'--; y'-- ; reload original if both reach 0 }
//     else      { y'++ (saturating); violation++ }
//
//     With the tolerance exhausted (x' = 0), W' stays 0 and Table 2's rule 3
//     orders the *higher* denominator first, so y'++ is exactly the "losers
//     have their priorities raised" bias of §2.
//
//   - EDF: the head stays queued (it will be transmitted late); the counter
//     ticks once per decision cycle the due stream loses, the paper's
//     Table 3 accounting.
//
// It reports whether a miss was charged.
func (b *Block) ExpireCheck(now uint64) bool {
	if !b.cur.Valid {
		return false
	}
	switch b.spec.Class {
	case attr.StaticPriority, attr.FairTag:
		return false // no deadlines to expire
	default: // EDF, WindowConstrained: deadline-bearing, checked below
	}
	if b.d64 >= now {
		return false
	}
	b.Counters.Missed++
	if b.spec.Class == attr.WindowConstrained {
		b.Counters.Drops++
		b.loserWindowAdjust()
		b.advance()
	}
	return true
}

// loserWindowAdjust refreshes the cached constraint part but does not
// repack the full key: its only caller (ExpireCheck) advances the head
// right after, and advance rekeys on both of its paths.
func (b *Block) loserWindowAdjust() {
	if b.cur.LossNum == 0 {
		b.Counters.Violations++
	}
	b.cur.LossNum, b.cur.LossDen = previewLoserWindow(b.cur.LossNum, b.cur.LossDen, b.orig)
	b.keyConst = attr.KeyConstraint(b.cur.LossNum, b.cur.LossDen)
}

// Rebind swaps the slot's head source while keeping its identity: spec,
// slot ID, window registers, and performance counters all survive. The
// in-flight head (a frame already pulled from the old source but not yet
// transmitted) is discarded — the caller owns conservation for it, e.g. by
// recomputing remaining work from the scheduled count — and the slot
// reloads from the new source at virtual time now (staying invalid when the
// new source starts empty). This is the supervisor's re-aggregation hook:
// after a dead shard's flows are folded into a survivor's streamlet set,
// the slot's source becomes the aggregator without disturbing QoS state.
// It reports whether an in-flight head was flushed.
func (b *Block) Rebind(src HeadSource, now uint64) (bool, error) {
	if src == nil {
		return false, fmt.Errorf("regblock: slot %d: rebind to nil head source", b.cur.Slot)
	}
	flushed := b.cur.Valid
	b.src = src
	b.Load(now)
	return flushed, nil
}

// Retune swaps the slot's service attributes in place while keeping
// everything else: the head source, the in-flight head, and the performance
// counters all survive — the live-control counterpart of Rebind, which swaps
// the source and keeps the spec. The new spec must be of the same attribute
// class (a class change alters what the Queue Manager stamps and what the
// expiry rules mean mid-stream; evict and re-admit instead). The window
// registers reset to the new constraint — a retuned tolerance starts a fresh
// window — while the current head keeps the deadline it was admitted under;
// successors synthesize deadlines from the new spec (deadlineFor reads the
// live spec).
func (b *Block) Retune(spec attr.Spec) error {
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("regblock: slot %d: %w", b.cur.Slot, err)
	}
	if spec.Class != b.spec.Class {
		return fmt.Errorf("regblock: slot %d: retune cannot change class %v to %v",
			b.cur.Slot, b.spec.Class, spec.Class)
	}
	b.spec = spec
	b.orig = spec.Constraint
	b.cur.LossNum = spec.Constraint.Num
	b.cur.LossDen = spec.Constraint.Den
	b.rekeyConstraint()
	return nil
}

// Refill re-validates an idle slot when its queue becomes non-empty again
// (event-driven path used by the endsystem). now anchors the new deadline.
// For backlogged guarded static-priority slots it doubles as the per-cycle
// starvation-guard evaluation (the hardware would fold this into the same
// INGEST pass).
func (b *Block) Refill(now uint64) {
	if b.cur.Valid {
		b.guardCheck(now)
		return
	}
	b.Load(now)
}

// guardCheck applies the static-priority starvation guard: once the current
// head has waited Guard virtual ticks past its arrival, its deadline field
// is boosted to 0 — the front of the priority order — until the head is
// served (advance re-synthesizes the deadline from the spec, un-boosting
// the successor). The boost fires at most once per head: after it, d64 is 0
// and the check short-circuits, so the steady-state cost is two compares.
func (b *Block) guardCheck(now uint64) {
	if b.spec.Guard == 0 || b.spec.Class != attr.StaticPriority || b.d64 == 0 {
		return
	}
	if now >= b.a64+uint64(b.spec.Guard) {
		b.d64 = 0
		b.cur.Deadline = 0
		b.rekey()
	}
}

// ComputeAhead is the §6 "compute-ahead" microarchitectural extension: the
// slot predicates both possible next attribute words — the one if it wins
// and the one if it loses this decision cycle — a cycle early, so
// PRIORITY_UPDATE collapses into a mux select. The previews cover the
// attribute-adjustment arithmetic (deadline synthesis and window registers,
// assuming a backlogged queue); the arrival-time field is only known once
// the next head actually loads, exactly as in hardware, so it is left
// unchanged in the previews. The slot is not mutated.
func (b *Block) ComputeAhead(now uint64) (ifWinner, ifLoser attr.Attributes) {
	ifWinner, ifLoser = b.cur, b.cur
	if !b.cur.Valid {
		return ifWinner, ifLoser
	}
	switch b.spec.Class {
	case attr.StaticPriority, attr.FairTag:
		return ifWinner, ifLoser // adjustments bypassed for these classes
	default: // EDF, WindowConstrained: previewed below
	}
	// Winner path: window winner-adjust, then deadline synthesis.
	if b.spec.Class == attr.WindowConstrained {
		ifWinner.LossNum, ifWinner.LossDen = previewWinnerWindow(b.cur.LossNum, b.cur.LossDen, b.orig)
	}
	ifWinner.Deadline = attr.WrapTime(b.d64 + uint64(b.spec.Period))
	// Loser path: only changes if the head has expired and the class
	// drops on expiry.
	if b.d64 < now && b.spec.Class == attr.WindowConstrained {
		ifLoser.LossNum, ifLoser.LossDen = previewLoserWindow(b.cur.LossNum, b.cur.LossDen, b.orig)
		ifLoser.Deadline = attr.WrapTime(b.d64 + uint64(b.spec.Period))
	}
	return ifWinner, ifLoser
}

func previewWinnerWindow(x, y uint8, orig attr.Constraint) (uint8, uint8) {
	switch {
	case y > x:
		y--
	case x == y && x > 0:
		x--
		y--
	}
	if x == 0 && y == 0 {
		return orig.Num, orig.Den
	}
	return x, y
}

func previewLoserWindow(x, y uint8, orig attr.Constraint) (uint8, uint8) {
	if x > 0 {
		x--
		y--
		if x == 0 && y == 0 {
			return orig.Num, orig.Den
		}
		return x, y
	}
	if y < 255 {
		y++
	}
	return x, y
}
