package regblock

import (
	"testing"
	"testing/quick"

	"repro/internal/attr"
)

// sliceSource feeds a fixed sequence of heads.
type sliceSource struct {
	heads []Head
	next  int
}

func (s *sliceSource) NextHead() (Head, bool) {
	if s.next >= len(s.heads) {
		return Head{}, false
	}
	h := s.heads[s.next]
	s.next++
	return h, true
}

// periodicSource generates arrivals 0, step, 2*step, ... endlessly.
type periodicSource struct {
	step uint64
	k    uint64
}

func (s *periodicSource) NextHead() (Head, bool) {
	h := Head{Arrival: s.k}
	s.k += s.step
	return h, true
}

func edfSpec(period uint16) attr.Spec { return attr.Spec{Class: attr.EDF, Period: period} }

func wcSpec(period uint16, x, y uint8) attr.Spec {
	return attr.Spec{Class: attr.WindowConstrained, Period: period, Constraint: attr.Constraint{Num: x, Den: y}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, attr.Spec{Class: attr.EDF}, &periodicSource{step: 1}); err == nil {
		t.Error("New accepted an invalid spec (zero period)")
	}
	if _, err := New(0, edfSpec(1), nil); err == nil {
		t.Error("New accepted a nil source")
	}
}

func TestLoadAnchorsDeadline(t *testing.T) {
	src := &sliceSource{heads: []Head{{Arrival: 10}}}
	b, err := New(3, edfSpec(5), src)
	if err != nil {
		t.Fatal(err)
	}
	if b.Valid() {
		t.Fatal("slot valid before Load")
	}
	b.Load(10)
	out := b.Out()
	if !out.Valid || out.Deadline != 15 || out.Arrival != 10 || out.Slot != 3 {
		t.Fatalf("after Load: %+v, want valid deadline=15 arrival=10 slot=3", out)
	}
}

func TestLoadEmptySourceStaysInvalid(t *testing.T) {
	b, _ := New(0, edfSpec(1), &sliceSource{})
	b.Load(0)
	if b.Valid() {
		t.Fatal("empty source must leave slot invalid")
	}
}

func TestServiceAdvancesDeadlineByPeriod(t *testing.T) {
	b, _ := New(0, edfSpec(4), &periodicSource{step: 4})
	b.Load(0)
	d0 := b.Out().Deadline // 0+4 = 4
	b.Service(false, true)
	if got := b.Out().Deadline; got != d0.Add(4) {
		t.Fatalf("deadline after service = %d, want %d", got, d0.Add(4))
	}
	if c := b.Counters; c.Services != 1 || c.Met != 1 || c.Missed != 0 || c.Wins != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestServiceLateCountsMissed(t *testing.T) {
	b, _ := New(0, edfSpec(1), &periodicSource{step: 1})
	b.Load(0)
	b.Service(true, true)
	if c := b.Counters; c.Missed != 1 || c.Met != 0 || c.Services != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestServiceNotCirculatedNoWin(t *testing.T) {
	// In block mode non-circulated members transmit without the win credit.
	b, _ := New(0, edfSpec(1), &periodicSource{step: 1})
	b.Load(0)
	b.Service(false, false)
	if c := b.Counters; c.Wins != 0 || c.Services != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestDeadlineReanchorsAfterIdle(t *testing.T) {
	// Packet 0 arrives at 0 (deadline 2); packet 1 arrives at 100 — way
	// past the old deadline — so the new deadline must re-anchor to 102,
	// not 4.
	src := &sliceSource{heads: []Head{{Arrival: 0}, {Arrival: 100}}}
	b, _ := New(0, edfSpec(2), src)
	b.Load(0)
	b.Service(false, true)
	if got := b.Out().Deadline; got != 102 {
		t.Fatalf("re-anchored deadline = %d, want 102", got)
	}
}

func TestDeadlineSynthesisUnderBacklog(t *testing.T) {
	// All packets already arrived (backlog): deadlines must step by
	// exactly the period regardless of arrival times.
	src := &sliceSource{heads: []Head{{Arrival: 0}, {Arrival: 0}, {Arrival: 1}, {Arrival: 1}}}
	b, _ := New(0, edfSpec(3), src)
	b.Load(0)
	want := []attr.Time16{3, 6, 9, 12}
	for i, w := range want {
		if got := b.Out().Deadline; got != w {
			t.Fatalf("packet %d deadline = %d, want %d", i, got, w)
		}
		b.Service(false, true)
	}
}

func TestSourceExhaustionInvalidatesAndRefill(t *testing.T) {
	src := &sliceSource{heads: []Head{{Arrival: 0}}}
	b, _ := New(0, edfSpec(1), src)
	b.Load(0)
	b.Service(false, true)
	if b.Valid() {
		t.Fatal("slot should be invalid after source exhaustion")
	}
	// Queue refills later.
	src.heads = append(src.heads, Head{Arrival: 50})
	b.Refill(50)
	if !b.Valid() || b.Out().Deadline != 51 {
		t.Fatalf("after Refill: %+v, want valid deadline=51", b.Out())
	}
	// Refill on a valid slot is a no-op.
	d := b.Out().Deadline
	b.Refill(60)
	if b.Out().Deadline != d {
		t.Fatal("Refill mutated a valid slot")
	}
}

func TestExpireCheckEDFTicksWithoutDrop(t *testing.T) {
	// EDF losers charge one miss per decision cycle while due, but keep
	// their head queued (it will be transmitted late) — the Table 3
	// accounting.
	b, _ := New(0, edfSpec(2), &periodicSource{step: 2})
	b.Load(0) // deadline 2
	if b.ExpireCheck(2) {
		t.Fatal("deadline == now must not expire (still schedulable at now)")
	}
	if !b.ExpireCheck(3) {
		t.Fatal("deadline 2 at now=3 must expire")
	}
	if !b.ExpireCheck(4) {
		t.Fatal("same stale head must tick again next cycle")
	}
	if c := b.Counters; c.Drops != 0 || c.Missed != 2 || c.Services != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if got := b.Out().Deadline; got != 2 {
		t.Fatalf("EDF head must stay queued; deadline = %d, want 2", got)
	}
	if b.Deadline64() != 2 || b.Arrival64() != 0 {
		t.Fatalf("shadow times = %d/%d, want 2/0", b.Deadline64(), b.Arrival64())
	}
}

func TestExpireCheckWCDropsAndAdvances(t *testing.T) {
	// Window-constrained losers drop the expired head (the tolerated
	// loss) and advance to the successor.
	b, _ := New(0, wcSpec(2, 1, 4), &periodicSource{step: 2})
	b.Load(0) // deadline 2
	if !b.ExpireCheck(3) {
		t.Fatal("deadline 2 at now=3 must expire")
	}
	if c := b.Counters; c.Drops != 1 || c.Missed != 1 || c.Services != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if got := b.Out().Deadline; got != 4 {
		t.Fatalf("deadline after drop = %d, want 4", got)
	}
}

func TestExpireCheckSkipsNonDeadlineClasses(t *testing.T) {
	for _, spec := range []attr.Spec{
		{Class: attr.StaticPriority, Priority: 3},
		{Class: attr.FairTag, Weight: 1},
	} {
		b, _ := New(0, spec, &sliceSource{heads: []Head{{Arrival: 0, Tag: 0}}})
		b.Load(0)
		if b.ExpireCheck(1000) {
			t.Errorf("class %v expired", spec.Class)
		}
		if b.Counters.Missed != 0 {
			t.Errorf("class %v charged a miss", spec.Class)
		}
	}
}

func TestStaticPriorityInvariant(t *testing.T) {
	b, _ := New(0, attr.Spec{Class: attr.StaticPriority, Priority: 7}, &periodicSource{step: 1})
	b.Load(0)
	for i := 0; i < 5; i++ {
		if got := b.Out().Deadline; got != 7 {
			t.Fatalf("static priority drifted to %d", got)
		}
		b.Service(false, true)
	}
}

func TestFairTagLoadsFromSource(t *testing.T) {
	src := &sliceSource{heads: []Head{{Arrival: 0, Tag: 10}, {Arrival: 1, Tag: 25}}}
	b, _ := New(0, attr.Spec{Class: attr.FairTag, Weight: 2}, src)
	b.Load(0)
	if b.Out().Deadline != 10 {
		t.Fatalf("first tag = %d, want 10", b.Out().Deadline)
	}
	b.Service(false, true)
	if b.Out().Deadline != 25 {
		t.Fatalf("second tag = %d, want 25", b.Out().Deadline)
	}
}

func TestWindowWinnerAdjustSequence(t *testing.T) {
	// W = 1/3. Service repeatedly (all on time):
	// (1,3) -> y>x: (1,2) -> y>x: (1,1) -> x==y>0: (0,0) -> reset (1,3).
	b, _ := New(0, wcSpec(1, 1, 3), &periodicSource{step: 1})
	b.Load(0)
	want := [][2]uint8{{1, 2}, {1, 1}, {1, 3}}
	for i, w := range want {
		b.Service(false, true)
		out := b.Out()
		if out.LossNum != w[0] || out.LossDen != w[1] {
			t.Fatalf("after service %d: x/y = %d/%d, want %d/%d", i+1, out.LossNum, out.LossDen, w[0], w[1])
		}
	}
}

func TestWindowLoserAdjustAndViolation(t *testing.T) {
	// W = 1/2, period 1. Let deadlines expire repeatedly:
	// miss: x>0: (0,1) ; miss: x==0: violation, y++: (0,2); miss: (0,3)...
	b, _ := New(0, wcSpec(1, 1, 2), &periodicSource{step: 1})
	b.Load(0) // deadline 1
	now := uint64(2)
	steps := [][2]uint8{{0, 1}, {0, 2}, {0, 3}}
	for i, w := range steps {
		if !b.ExpireCheck(now + uint64(i)) {
			t.Fatalf("step %d: expected expiry (deadline %d, now %d)", i, b.Out().Deadline, now+uint64(i))
		}
		out := b.Out()
		if out.LossNum != w[0] || out.LossDen != w[1] {
			t.Fatalf("after miss %d: x/y = %d/%d, want %d/%d", i+1, out.LossNum, out.LossDen, w[0], w[1])
		}
	}
	if b.Counters.Violations != 2 {
		t.Fatalf("violations = %d, want 2", b.Counters.Violations)
	}
}

func TestWindowLoserResetOnWindowExhausted(t *testing.T) {
	// W = 2/2: two misses exhaust the window exactly -> reset to 2/2.
	b, _ := New(0, wcSpec(1, 2, 2), &periodicSource{step: 1})
	b.Load(0)
	b.ExpireCheck(5) // (1,1)
	out := b.Out()
	if out.LossNum != 1 || out.LossDen != 1 {
		t.Fatalf("after first miss: %d/%d, want 1/1", out.LossNum, out.LossDen)
	}
	b.ExpireCheck(6) // (0,0) -> reset (2,2)
	out = b.Out()
	if out.LossNum != 2 || out.LossDen != 2 {
		t.Fatalf("after window exhaustion: %d/%d, want reset 2/2", out.LossNum, out.LossDen)
	}
	if b.Counters.Violations != 0 {
		t.Fatalf("violations = %d, want 0 (losses within tolerance)", b.Counters.Violations)
	}
}

func TestWindowDenominatorSaturates(t *testing.T) {
	b, _ := New(0, wcSpec(1, 0, 255), &periodicSource{step: 1})
	b.Load(0)
	for i := 0; i < 5; i++ {
		b.ExpireCheck(uint64(10 + i))
	}
	if got := b.Out().LossDen; got != 255 {
		t.Fatalf("denominator = %d, want saturated 255", got)
	}
}

// TestWindowInvariants property-tests the DWCS adjustment arithmetic: with
// x <= y initially, x' <= y' always, and y' == 0 implies x' == 0 (the
// registers never underflow or cross).
func TestWindowInvariants(t *testing.T) {
	f := func(x, y uint8, ops []bool) bool {
		if y == 0 || x > y {
			return true
		}
		b, err := New(0, wcSpec(1, x, y), &periodicSource{step: 1})
		if err != nil {
			return true
		}
		b.Load(0)
		for _, win := range ops {
			if win {
				b.Service(false, true)
			} else {
				b.ExpireCheck(b.Deadline64() + 1) // force expiry
			}
			out := b.Out()
			if out.LossDen > 0 && out.LossNum > out.LossDen {
				return false
			}
			if out.LossDen == 0 && out.LossNum != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestComputeAheadMatchesActual(t *testing.T) {
	// The winner preview's deadline/window fields must equal the state
	// after an actual backlogged Service; same for loser preview vs
	// ExpireCheck when expired.
	f := func(x, y uint8, period uint16, winner bool) bool {
		if y == 0 || x > y {
			return true
		}
		p := period%100 + 1
		mk := func() *Block {
			b, _ := New(0, wcSpec(p, x, y), &periodicSource{step: 0}) // fully backlogged
			b.Load(0)
			return b
		}
		b := mk()
		now := b.Deadline64() + 1
		ifW, ifL := b.ComputeAhead(now)
		if winner {
			b.Service(false, true)
			got := b.Out()
			return got.Deadline == ifW.Deadline && got.LossNum == ifW.LossNum && got.LossDen == ifW.LossDen
		}
		b.ExpireCheck(now)
		got := b.Out()
		return got.Deadline == ifL.Deadline && got.LossNum == ifL.LossNum && got.LossDen == ifL.LossDen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestComputeAheadLoserUnexpiredUnchanged(t *testing.T) {
	b, _ := New(0, wcSpec(4, 1, 2), &periodicSource{step: 4})
	b.Load(0)
	_, ifL := b.ComputeAhead(0) // deadline 4, now 0: not expired
	if ifL != b.Out() {
		t.Fatalf("unexpired loser preview changed: %+v vs %+v", ifL, b.Out())
	}
}

func TestComputeAheadInvalidSlot(t *testing.T) {
	b, _ := New(0, edfSpec(1), &sliceSource{})
	b.Load(0)
	ifW, ifL := b.ComputeAhead(0)
	if ifW.Valid || ifL.Valid {
		t.Fatal("invalid slot previews must stay invalid")
	}
}

func TestServiceOnInvalidSlotIsNoop(t *testing.T) {
	b, _ := New(0, edfSpec(1), &sliceSource{})
	b.Load(0)
	b.Service(false, true)
	if b.Counters.Services != 0 {
		t.Fatal("Service on invalid slot charged a counter")
	}
}

func TestSpecAndSlotAccessors(t *testing.T) {
	spec := wcSpec(7, 1, 4)
	b, _ := New(9, spec, &periodicSource{step: 1})
	if b.Slot() != 9 {
		t.Errorf("Slot() = %d, want 9", b.Slot())
	}
	if b.Spec() != spec {
		t.Errorf("Spec() = %+v, want %+v", b.Spec(), spec)
	}
}

func TestDeadlineWrapBehaviour(t *testing.T) {
	// Deadlines must stay ordered across the 16-bit wrap.
	b, _ := New(0, edfSpec(100), &periodicSource{step: 100, k: 65400})
	b.Load(65400)
	d0 := b.Out().Deadline // 65500
	b.Service(false, true) // next deadline 65600 -> wraps to 64
	d1 := b.Out().Deadline
	if !d0.Before(d1) {
		t.Fatalf("wrapped deadline %d not after %d", d1, d0)
	}
}

func BenchmarkServiceBacklogged(b *testing.B) {
	blk, _ := New(0, wcSpec(4, 1, 4), &periodicSource{step: 4})
	blk.Load(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Service(false, true)
	}
}

func BenchmarkExpireCheckWC(b *testing.B) {
	blk, _ := New(0, wcSpec(1, 1, 4), &periodicSource{step: 1})
	blk.Load(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.ExpireCheck(blk.Deadline64() + 1)
	}
}

func BenchmarkComputeAhead(b *testing.B) {
	blk, _ := New(0, wcSpec(4, 1, 4), &periodicSource{step: 4})
	blk.Load(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.ComputeAhead(uint64(i))
	}
}

// TestKeyCachedConsistency pins the key-cache invariant the scheduler hot
// path relies on: after *any* externally visible mutation sequence, the
// cached Key() equals repacking the current attribute word against the
// installed reference. The winner/loser window adjusts deliberately skip
// rekeying (advance always follows); this test would catch that assumption
// rotting.
func TestKeyCachedConsistency(t *testing.T) {
	check := func(blk *Block, ref attr.Time16, when string) {
		t.Helper()
		if got, want := blk.Key(), blk.Out().Key(ref); got != want {
			t.Fatalf("%s: cached key %#x, repacked %#x (word %+v)", when, got, want, blk.Out())
		}
	}

	blk, err := New(3, wcSpec(4, 1, 4), &periodicSource{step: 4})
	if err != nil {
		t.Fatal(err)
	}
	check(blk, 0, "after New")
	blk.Load(0)
	check(blk, 0, "after Load")
	const ref = attr.Time16(0x4321)
	blk.SetKeyRef(ref)
	check(blk, ref, "after SetKeyRef")
	for i := 0; i < 8; i++ {
		blk.Service(false, true) // winner adjust + advance
		check(blk, ref, "after winner Service")
		blk.ExpireCheck(blk.Deadline64() + 1) // loser adjust + advance
		check(blk, ref, "after ExpireCheck")
	}

	// A draining source exercises the invalid paths.
	drained, err := New(1, wcSpec(2, 1, 2), &finiteSource{n: 1, step: 2})
	if err != nil {
		t.Fatal(err)
	}
	drained.Load(0)
	check(drained, 0, "finite after Load")
	drained.Service(false, true) // consumes the only head: slot goes invalid
	check(drained, 0, "after draining Service")
	drained.Refill(10)
	check(drained, 0, "after failed Refill")
}

// finiteSource yields n heads, then reports empty.
type finiteSource struct {
	n    int
	next uint64
	step uint64
}

func (s *finiteSource) NextHead() (Head, bool) {
	if s.n == 0 {
		return Head{}, false
	}
	s.n--
	h := Head{Arrival: s.next}
	s.next += s.step
	return h, true
}
