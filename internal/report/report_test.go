package report

import (
	"strings"
	"testing"
)

func TestGenerateContainsEverySection(t *testing.T) {
	var sb strings.Builder
	if err := Generate(&sb, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, section := range []string{
		"# ShareStreams reproduction report",
		"## Table 3 — block decisions vs max-finding",
		"## Table 3 variant",
		"## Figure 7",
		"## Figure 8",
		"## Figure 9",
		"## Figure 10",
		"## §5.2 — performance comparison",
		"## §5.2 — line-card isolation",
		"## §4.1",
		"## §3",
		"## §6",
		"## Block orderedness",
		"## Figure 1",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("report missing section %q", section)
		}
	}
	// A few signature numbers must appear.
	for _, needle := range []string{"469484", "299065", "Stream 1"} {
		if !strings.Contains(out, needle) {
			t.Errorf("report missing %q", needle)
		}
	}
	// Balanced code fences.
	if n := strings.Count(out, "```"); n%2 != 0 {
		t.Errorf("unbalanced code fences: %d", n)
	}
}
