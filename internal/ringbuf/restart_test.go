package ringbuf

import "testing"

// TestReuseAfterRestart models the supervisor's restart path: a crashed
// pipeline's tx ring is drained at the recovery barrier and the same ring
// object is handed to the restarted segment. The table walks the ring
// through several crash/drain/restart generations — with the read/write
// pointers well past the capacity — and checks that a reused ring never
// replays stale elements and never loses fresh ones.
func TestReuseAfterRestart(t *testing.T) {
	cases := []struct {
		name string
		cap  int
		// leftover elements "in flight" when the segment crashes,
		// generations of restart, and pushes per generation.
		leftover, generations, perGen int
	}{
		{"clean restart", 4, 0, 3, 4},
		{"partial drain then restart", 4, 3, 3, 4},
		{"full ring at crash", 4, 4, 2, 4},
		{"many generations wrap pointers", 2, 1, 9, 2},
		{"large ring few elements", 64, 5, 4, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := New[int](tc.cap)
			if err != nil {
				t.Fatal(err)
			}
			next := 0 // monotone payload: any repeat is a stale replay
			for gen := 0; gen < tc.generations; gen++ {
				// The segment runs until the crash leaves tc.leftover
				// elements undelivered in the ring.
				for i := 0; i < tc.leftover; i++ {
					if !r.Push(next) {
						t.Fatalf("gen %d: push %d refused with %d/%d queued", gen, next, i, tc.cap)
					}
					next++
				}
				// Barrier drain: the supervisor salvages the residue.
				low := next - tc.leftover
				for i := 0; i < tc.leftover; i++ {
					v, ok := r.Pop()
					if !ok {
						t.Fatalf("gen %d: residue short by %d", gen, tc.leftover-i)
					}
					if v != low+i {
						t.Fatalf("gen %d: salvage got %d, want %d", gen, v, low+i)
					}
				}
				if !r.Empty() {
					t.Fatalf("gen %d: ring not empty after barrier drain", gen)
				}
				// Restarted segment reuses the ring: every fresh element
				// must come out exactly once, in order, nothing stale.
				for i := 0; i < tc.perGen; i++ {
					if !r.Push(next + i) {
						// Consumer keeps pace, as in the live pipeline.
						v, ok := r.Pop()
						if !ok || v != next {
							t.Fatalf("gen %d: pop under pressure got (%d,%v), want %d", gen, v, ok, next)
						}
						next++
						if !r.Push(next + i - 1) {
							t.Fatalf("gen %d: push refused after pop", gen)
						}
					}
				}
				for !r.Empty() {
					v, ok := r.Pop()
					if !ok {
						t.Fatalf("gen %d: Empty/Pop disagree", gen)
					}
					if v != next {
						t.Fatalf("gen %d: got %d, want %d (stale replay or loss)", gen, v, next)
					}
					next++
				}
			}
			if _, ok := r.Pop(); ok {
				t.Fatal("drained ring produced an element")
			}
		})
	}
}

// TestWrapAroundPointersFarPastCapacity drives the monotone pointers
// through many multiples of the capacity in lock-step, checking the mask
// reduction at every offset — the index arithmetic a restart-reused ring
// depends on.
func TestWrapAroundPointersFarPastCapacity(t *testing.T) {
	for _, capacity := range []int{2, 4, 8, 32} {
		r, err := New[uint64](capacity)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(capacity)*17 + 3
		for i := uint64(0); i < total; i++ {
			if !r.Push(i) {
				t.Fatalf("cap %d: push %d refused on empty ring", capacity, i)
			}
			v, ok := r.Pop()
			if !ok || v != i {
				t.Fatalf("cap %d: got (%d,%v), want %d", capacity, v, ok, i)
			}
		}
		if r.Len() != 0 {
			t.Fatalf("cap %d: Len %d after lock-step drain", capacity, r.Len())
		}
	}
}
