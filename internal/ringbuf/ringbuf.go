// Package ringbuf provides the synchronization-free circular queues of the
// ShareStreams endsystem (Figure 3): single-producer/single-consumer rings
// with separate read and write pointers, "for concurrent access, without any
// synchronization needs".
//
// A producer may Push while the consumer concurrently Pops — no locks; the
// indices are published with atomic acquire/release semantics, which is the
// software analogue of the separate read/write pointer registers the paper
// describes. Any other concurrency (two producers, two consumers) is outside
// the contract, exactly as with the hardware pointers.
package ringbuf

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Ring is a bounded single-producer/single-consumer queue. The zero value
// is not usable; call New.
type Ring[T any] struct {
	buf  []T
	mask uint64

	// head is the consumer (read) pointer, tail the producer (write)
	// pointer; both increase monotonically and are reduced modulo the
	// capacity via mask. Padding keeps the two pointers on separate cache
	// lines — the rings sit between spinning producer and consumer
	// goroutines in the endsystem pipeline.
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64
}

// New builds a ring holding up to capacity elements. capacity must be a
// power of two (≥ 2) so index reduction is a mask, as in the hardware.
func New[T any](capacity int) (*Ring[T], error) {
	if capacity < 2 || bits.OnesCount(uint(capacity)) != 1 {
		return nil, fmt.Errorf("ringbuf: capacity %d is not a power of two ≥ 2", capacity)
	}
	return &Ring[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}, nil
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the current element count (approximate under concurrency,
// never negative). head must be loaded before tail: head only grows, and
// head ≤ tail holds at every instant, so a tail loaded after the head is
// always ≥ it and the unsigned subtraction cannot wrap. With the loads the
// other way around, a consumer popping between the two loads can advance
// head past the stale tail and the difference wraps to a huge count.
func (r *Ring[T]) Len() int {
	head := r.head.Load()
	tail := r.tail.Load()
	return int(tail - head)
}

// Empty reports whether the ring is empty (approximate under concurrency;
// inherits Len's conservative head-before-tail load ordering).
func (r *Ring[T]) Empty() bool { return r.Len() == 0 }

// Push appends v; it reports false when the ring is full. Producer-side
// only.
func (r *Ring[T]) Push(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1) // release: publishes the element
	return true
}

// Pop removes and returns the oldest element; ok is false when empty.
// Consumer-side only.
func (r *Ring[T]) Pop() (v T, ok bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return v, false
	}
	v = r.buf[head&r.mask]
	var zero T
	r.buf[head&r.mask] = zero // drop the reference for GC
	r.head.Store(head + 1)
	return v, true
}

// Peek returns the oldest element without removing it. Consumer-side only.
func (r *Ring[T]) Peek() (v T, ok bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return v, false
	}
	return r.buf[head&r.mask], true
}
