package ringbuf

import (
	"runtime"
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := New[int](n); err == nil {
			t.Errorf("New accepted capacity %d", n)
		}
	}
	r, err := New[int](8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 {
		t.Errorf("Cap = %d", r.Cap())
	}
}

func TestPushPopFIFO(t *testing.T) {
	r, _ := New[int](4)
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: %d %v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	if !r.Empty() {
		t.Fatal("ring not empty after drain")
	}
}

func TestWrapAround(t *testing.T) {
	r, _ := New[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d pop %d: %d %v", round, i, v, ok)
			}
		}
	}
}

func TestPeek(t *testing.T) {
	r, _ := New[string](2)
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	r.Push("a")
	r.Push("b")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q %v", v, ok)
	}
	if r.Len() != 2 {
		t.Fatal("peek consumed an element")
	}
	r.Pop()
	if v, _ := r.Peek(); v != "b" {
		t.Fatalf("peek after pop = %q", v)
	}
}

func TestPointerElementsReleased(t *testing.T) {
	r, _ := New[*int](2)
	x := new(int)
	r.Push(x)
	r.Pop()
	// The slot must no longer hold the pointer (GC hygiene). Peek the raw
	// buffer via a second push/pop cycle at the same slot.
	if r.buf[0] != nil {
		t.Fatal("popped slot still references the element")
	}
}

// TestConcurrentSPSC drives a producer and a consumer concurrently — the
// Queue-Manager/Transmission-Engine pattern of Figure 3. Run under -race.
func TestConcurrentSPSC(t *testing.T) {
	const total = 50000
	r, _ := New[int](256)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var sum uint64
	go func() {
		defer wg.Done()
		for n := 0; n < total; {
			if v, ok := r.Pop(); ok {
				if v != n {
					t.Errorf("out of order: got %d want %d", v, n)
					return
				}
				sum += uint64(v)
				n++
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	want := uint64(total) * (total - 1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if !r.Empty() {
		t.Fatalf("residual elements: %d", r.Len())
	}
}

// TestLenObserverNeverNegative stresses Len from a third goroutine while a
// producer and consumer run flat out — the shard aggregator reading queue
// backlogs while a pipeline drains. Under the old tail-before-head load
// ordering, the consumer advancing head between the two loads makes the
// uint64 subtraction wrap and Len report a huge negative count; the
// head-before-tail ordering keeps the result a conservative non-negative
// length. Run under -race.
func TestLenObserverNeverNegative(t *testing.T) {
	const total = 200000
	r, _ := New[int](64)
	var wg sync.WaitGroup
	wg.Add(2)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for n := 0; n < total; {
			if _, ok := r.Pop(); ok {
				n++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var bad int
	var badVal int
	observerDone := make(chan struct{})
	go func() {
		defer close(observerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := r.Len(); n < 0 {
				bad++
				badVal = n
			}
			if r.Empty() && r.Len() < 0 { // exercise Empty's audit too
				bad++
			}
			runtime.Gosched() // don't starve the pipeline on small GOMAXPROCS
		}
	}()
	wg.Wait()
	close(stop)
	<-observerDone
	if bad > 0 {
		t.Fatalf("observer saw %d negative Len results (last %d)", bad, badVal)
	}
}
