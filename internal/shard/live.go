package shard

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/qm"
	"repro/internal/regblock"
)

// This file is the router's live (service) mode: instead of admitting a
// fixed stream set and running one batch to completion, a control plane
// starts the shards once and then admits, retunes, and evicts streams while
// the schedulers run. Slots are reusable — eviction opens a hole, the next
// admission to that shard fills the lowest free slot — and every mutation is
// only legal at a fenced quiescent point of its shard: the caller (the
// ctlplane engine) guarantees no producer is mid-Offer and the scheduler is
// between StepShard batches. The dispatcher invariant is unchanged: a
// stream's home shard is its flow hash, and it is never re-homed.

// emptySource is the head source of a vacated slot: it never yields a head,
// so the slot idles (never backlogged, never wins) until re-admission
// replaces the block. Rebinding to it — rather than leaving the evicted
// stream's source attached — keeps the dead slot from pulling frames out of
// a ring the Queue Manager no longer accounts to anyone.
type emptySource struct{}

func (emptySource) NextHead() (regblock.Head, bool) { return regblock.Head{}, false }

// StartLive switches the router into live mode: every shard's overload
// policy is set to policy, every scheduler starts, and from here on slots
// change through AdmitLive/EvictLive/RetuneLive at fenced quiescent points
// instead of batch Admit/Run. Streams batch-admitted before StartLive are
// carried over and become live-manageable. StartLive and Run are mutually
// exclusive, and each may happen once.
func (r *Router) StartLive(policy qm.Policy) error {
	if r.ran {
		return fmt.Errorf("shard: StartLive after Run or StartLive")
	}
	r.ran = true
	r.live = true
	for _, s := range r.shards {
		s.manager.SetPolicy(policy)
		if err := s.sched.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Live reports whether StartLive has been called.
func (r *Router) Live() bool { return r.live }

// Locate returns stream id's placement (home shard, local slot), with
// ok=false for unknown streams.
func (r *Router) Locate(id StreamID) (shard, slot int, ok bool) {
	loc, found := r.byID[id]
	if !found {
		return 0, 0, false
	}
	return loc.shard, loc.slot, true
}

// SlotStream returns the stream occupying shard k's slot, with ok=false for
// free slots or out-of-range indices — the inverse of Locate, for walking a
// shard's occupancy without map iteration (deterministic order).
func (r *Router) SlotStream(k, slot int) (StreamID, bool) {
	if k < 0 || k >= len(r.shards) || slot < 0 || slot >= r.cfg.SlotsPerShard {
		return 0, false
	}
	s := r.shards[k]
	if !s.used[slot] {
		return 0, false
	}
	return s.ids[slot], true
}

// AdmitLive admits stream id while the shards run: the flow hash picks the
// home shard, the lowest free slot there receives the descriptor and a
// dynamically admitted block (counters start fresh — it is a new stream,
// whatever slot it reuses). It fails when the router is not live, the ID is
// already admitted, the home shard has no free slot, or the spec is illegal
// under the configured program's decision mode. Returns the placement.
func (r *Router) AdmitLive(id StreamID, spec attr.Spec) (shard, slot int, err error) {
	if !r.live {
		return 0, 0, fmt.Errorf("shard: AdmitLive before StartLive")
	}
	if _, dup := r.byID[id]; dup {
		return 0, 0, fmt.Errorf("shard: stream %d already admitted", id)
	}
	k := r.ShardOf(id)
	s := r.shards[k]
	slot = -1
	for i, u := range s.used {
		if !u {
			slot = i
			break
		}
	}
	if slot < 0 {
		return 0, 0, fmt.Errorf("shard: stream %d rejected: home shard %d is full (%d slots)",
			id, k, r.cfg.SlotsPerShard)
	}
	if err := s.manager.Describe(slot, spec); err != nil {
		return 0, 0, err
	}
	if err := s.manager.SetProgram(slot, r.cfg.Program); err != nil {
		return 0, 0, err
	}
	if err := s.sched.AdmitDynamic(slot, spec, s.manager.Source(slot)); err != nil {
		return 0, 0, err
	}
	s.used[slot] = true
	s.ids[slot] = id
	s.occupied.Add(1)
	r.byID[id] = location{shard: k, slot: slot}
	return k, slot, nil
}

// EvictReport accounts one live eviction for the caller's conservation
// ledger: Drained frames were removed from the stream's ring without ever
// reaching the card (head-drop debt frames are not among them — their loss
// was charged at Offer time), and Flushed reports whether the slot held an
// in-flight latched head, already dequeued but never transmitted, that the
// rebind discarded. Evicted work = Drained + Flushed.
type EvictReport struct {
	Shard   int
	Slot    int
	Drained int
	Flushed bool
}

// EvictLive removes stream id while the shards run: the stream's ring is
// drained (salvageable frames counted, debt frames discarded against their
// already-charged drops), the slot's block is rebound to an empty source —
// flushing any in-flight head and freeing the slot to idle — the slot's
// fair-queuing tag state is reset for its next occupant, and the counters
// the evicted stream accumulated stay on the slot (they are hardware
// counters; the ctlplane ledger snapshots them per occupancy). Only legal at
// a fenced quiescent point of the stream's shard.
func (r *Router) EvictLive(id StreamID) (EvictReport, error) {
	if !r.live {
		return EvictReport{}, fmt.Errorf("shard: EvictLive before StartLive")
	}
	loc, ok := r.byID[id]
	if !ok {
		return EvictReport{}, fmt.Errorf("shard: stream %d not admitted", id)
	}
	s := r.shards[loc.shard]
	rep := EvictReport{Shard: loc.shard, Slot: loc.slot}
	rep.Drained = s.manager.Drain(loc.slot, nil)
	flushed, err := s.sched.Rebind(loc.slot, emptySource{})
	if err != nil {
		return rep, err
	}
	rep.Flushed = flushed
	s.manager.ResetTags(loc.slot)
	s.used[loc.slot] = false
	s.ids[loc.slot] = 0
	s.occupied.Add(-1)
	delete(r.byID, id)
	return rep, nil
}

// RetuneLive swaps stream id's service attributes in place — weights,
// periods, priorities, window constraints — keeping the slot's queue,
// in-flight head, and performance counters. The attribute class must not
// change (evict + re-admit instead; core enforces it before any state
// mutates). Only legal at a fenced quiescent point of the stream's shard.
func (r *Router) RetuneLive(id StreamID, spec attr.Spec) error {
	if !r.live {
		return fmt.Errorf("shard: RetuneLive before StartLive")
	}
	loc, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("shard: stream %d not admitted", id)
	}
	s := r.shards[loc.shard]
	if err := s.sched.Retune(loc.slot, spec); err != nil {
		return err
	}
	// The scheduler accepted, so the spec is valid and same-class; the
	// Queue-Manager descriptor follows it (weights feed tag stamping).
	return s.manager.Describe(loc.slot, spec)
}

// SetStreamProgram switches stream id's per-slot rank program (the
// STFQ/WFQ start-vs-finish tag choice is the only datapath difference).
// Frames already stamped keep their tags; the switch changes which tag
// future dequeues load onto the card.
func (r *Router) SetStreamProgram(id StreamID, p decision.Program) error {
	if !r.live {
		return fmt.Errorf("shard: SetStreamProgram before StartLive")
	}
	loc, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("shard: stream %d not admitted", id)
	}
	return r.shards[loc.shard].manager.SetProgram(loc.slot, p)
}

// StepShard hands shard k's scheduler n decision cycles, forwarding each
// cycle's result to visit exactly as core.RunCycles does (visit may be nil
// for the lean path). It is the live mode's shard clock: the ctlplane
// engine steps every shard once per epoch, and the quiescent gaps between
// StepShard calls are where mutations fence in.
func (r *Router) StepShard(k, n int, visit func(*core.CycleResult) bool) (int, error) {
	if !r.live {
		return 0, fmt.Errorf("shard: StepShard before StartLive")
	}
	if k < 0 || k >= len(r.shards) {
		return 0, fmt.Errorf("shard: shard %d out of range [0, %d)", k, len(r.shards))
	}
	return r.shards[k].sched.RunCycles(n, visit), nil
}

// ShardNow returns shard k's scheduler virtual time (0 when k is out of
// range).
func (r *Router) ShardNow(k int) uint64 {
	if k < 0 || k >= len(r.shards) {
		return 0
	}
	return r.shards[k].sched.Now()
}

// SlotCounters returns shard k's slot hardware counters (zero value when
// out of range) — the ctlplane ledger's per-occupancy delta source.
func (r *Router) SlotCounters(k, slot int) regblock.Counters {
	if k < 0 || k >= len(r.shards) {
		return regblock.Counters{}
	}
	return r.shards[k].sched.SlotCounters(slot)
}

// SlotInFlight reports whether shard k's slot holds an in-flight latched
// head: a frame dequeued from its ring but not yet transmitted. The
// conservation ledger counts it as in-flight work.
func (r *Router) SlotInFlight(k, slot int) bool {
	if k < 0 || k >= len(r.shards) {
		return false
	}
	return r.shards[k].sched.SlotAttributes(slot).Valid
}
