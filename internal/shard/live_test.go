package shard

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/qm"
)

// TestLiveLifecycle walks the live slot lifecycle end to end on one shard:
// admit while running, deliver, evict with a drained backlog and a flushed
// in-flight head, reuse the freed slot, retune in place.
func TestLiveLifecycle(t *testing.T) {
	r, err := New(Config{Shards: 2, SlotsPerShard: 4, RingCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	spec := attr.Spec{Class: attr.EDF, Period: 3}

	// Live ops are barred before StartLive.
	if _, _, err := r.AdmitLive(1, spec); err == nil {
		t.Fatal("AdmitLive before StartLive accepted")
	}
	if _, err := r.EvictLive(1); err == nil {
		t.Fatal("EvictLive before StartLive accepted")
	}
	if err := r.StartLive(qm.RejectNew); err != nil {
		t.Fatal(err)
	}
	if !r.Live() {
		t.Fatal("Live() false after StartLive")
	}
	// And batch ops are barred after it.
	if err := r.Admit(9, spec); err == nil {
		t.Fatal("batch Admit after StartLive accepted")
	}
	if _, err := r.Run(1); err == nil {
		t.Fatal("batch Run after StartLive accepted")
	}
	if err := r.StartLive(qm.RejectNew); err == nil {
		t.Fatal("double StartLive accepted")
	}

	home, s1, err := r.AdmitLive(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 0 {
		t.Fatalf("first live admission landed in slot %d, want 0", s1)
	}
	if _, _, err := r.AdmitLive(1, spec); err == nil {
		t.Fatal("duplicate AdmitLive accepted")
	}
	if gotK, gotS, ok := r.Locate(1); !ok || gotK != home || gotS != s1 {
		t.Fatalf("Locate(1) = (%d, %d, %v), want (%d, %d, true)", gotK, gotS, ok, home, s1)
	}
	if id, ok := r.SlotStream(home, s1); !ok || id != 1 {
		t.Fatalf("SlotStream(%d, %d) = (%d, %v)", home, s1, id, ok)
	}

	// Fill the home shard with same-hash streams; the overflow admission is
	// rejected (flow-hash admission control, same as batch).
	var sameHome []StreamID
	for id := StreamID(2); len(sameHome) < 4; id++ {
		if r.ShardOf(id) == home {
			sameHome = append(sameHome, id)
		}
	}
	for i := 0; i < 3; i++ {
		if k, slot, err := r.AdmitLive(sameHome[i], spec); err != nil || k != home || slot != i+1 {
			t.Fatalf("admit %d: (%d, %d, %v), want slot %d on shard %d",
				sameHome[i], k, slot, err, i+1, home)
		}
	}
	if _, _, err := r.AdmitLive(sameHome[3], spec); err == nil ||
		!strings.Contains(err.Error(), "full") {
		t.Fatalf("overflow admission: %v", err)
	}
	if got := r.ShardStreams(home); got != 4 {
		t.Fatalf("home shard occupancy %d, want 4", got)
	}

	// Deliver stream 1's frames through StepShard.
	for f := 0; f < 5; f++ {
		if !r.Submit(1, qm.Frame{Size: 100, Arrival: uint64(f)}) {
			t.Fatalf("submit %d refused", f)
		}
	}
	delivered := 0
	for i := 0; i < 64 && delivered < 5; i++ {
		if _, err := r.StepShard(home, 8, func(cr *core.CycleResult) bool {
			delivered += len(cr.Transmissions)
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if delivered != 5 {
		t.Fatalf("delivered %d frames, want 5", delivered)
	}
	if got := r.SlotCounters(home, s1).Services; got != 5 {
		t.Fatalf("slot services %d, want 5", got)
	}
	if r.ShardNow(home) == 0 {
		t.Fatal("shard virtual time never advanced")
	}

	// Evict a never-stepped backlog: every queued frame drains, nothing was
	// in flight.
	for f := 0; f < 3; f++ {
		if !r.Submit(sameHome[0], qm.Frame{Size: 100, Arrival: uint64(f)}) {
			t.Fatalf("submit %d refused", f)
		}
	}
	rep, err := r.EvictLive(sameHome[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shard != home || rep.Slot != 1 || rep.Drained != 3 || rep.Flushed {
		t.Fatalf("evict report %+v, want shard %d slot 1 drained 3 unflushed", rep, home)
	}
	if _, ok := r.SlotStream(home, 1); ok {
		t.Fatal("evicted slot still reports an occupant")
	}

	// Evict with an in-flight head: step until stream 1's next head latches,
	// then the rebind must flush it.
	for f := 0; f < 4; f++ {
		r.Submit(1, qm.Frame{Size: 100, Arrival: uint64(10 + f)})
	}
	for i := 0; i < 64 && !r.SlotInFlight(home, s1); i++ {
		if _, err := r.StepShard(home, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !r.SlotInFlight(home, s1) {
		t.Fatal("stream 1 never latched a head")
	}
	backlog := r.Backlog(1)
	rep, err = r.EvictLive(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Flushed || rep.Drained != backlog {
		t.Fatalf("evict report %+v, want flushed with drained %d", rep, backlog)
	}
	if _, err := r.EvictLive(1); err == nil {
		t.Fatal("double eviction accepted")
	}
	if got := r.ShardStreams(home); got != 2 {
		t.Fatalf("occupancy after evictions %d, want 2", got)
	}

	// Re-admission fills the lowest freed slot (slot 0, stream 1's old one).
	k, slot, err := r.AdmitLive(sameHome[3], spec)
	if err != nil {
		t.Fatal(err)
	}
	if k != home || slot != 0 {
		t.Fatalf("re-admission landed at (%d, %d), want (%d, 0)", k, slot, home)
	}
	if got := r.SlotCounters(home, 0).Services; got != 0 {
		t.Fatalf("reused slot carries stale counters: %d services", got)
	}

	// Retune in place: the spec changes on both the scheduler and the QM
	// descriptor, counters survive.
	served := r.SlotCounters(home, 2).Services
	if err := r.RetuneLive(sameHome[1], attr.Spec{Class: attr.EDF, Period: 9}); err != nil {
		t.Fatal(err)
	}
	if got := r.shards[home].sched.SlotSpec(2).Period; got != 9 {
		t.Fatalf("scheduler spec period %d after retune, want 9", got)
	}
	if got := r.Manager(home).Spec(2).Period; got != 9 {
		t.Fatalf("QM descriptor period %d after retune, want 9", got)
	}
	if got := r.SlotCounters(home, 2).Services; got != served {
		t.Fatalf("retune disturbed counters: %d, want %d", got, served)
	}
	// Class changes and unknown streams are rejected.
	if err := r.RetuneLive(sameHome[1], attr.Spec{Class: attr.FairTag, Weight: 2}); err == nil {
		t.Fatal("class-changing retune accepted")
	}
	if err := r.RetuneLive(777, spec); err == nil {
		t.Fatal("retune of unknown stream accepted")
	}
}

// TestLiveFairTagSlotReuse pins the tag-state hygiene of slot reuse: a
// FairTag stream admitted into a vacated slot must not inherit the previous
// occupant's virtual finish tag.
func TestLiveFairTagSlotReuse(t *testing.T) {
	r, err := New(Config{Shards: 1, SlotsPerShard: 2, RingCapacity: 8,
		Program: decision.ProgramSTFQ})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.StartLive(qm.Backpressure); err != nil {
		t.Fatal(err)
	}
	spec := attr.Spec{Class: attr.FairTag, Weight: 1}
	if _, _, err := r.AdmitLive(1, spec); err != nil {
		t.Fatal(err)
	}
	// Queue large frames to run the slot's finish tag far ahead, then evict
	// without serving them.
	for f := 0; f < 4; f++ {
		if !r.Submit(1, qm.Frame{Size: 1 << 20, Arrival: uint64(f)}) {
			t.Fatalf("submit %d refused", f)
		}
	}
	if _, err := r.EvictLive(1); err != nil {
		t.Fatal(err)
	}
	if _, slot, err := r.AdmitLive(2, spec); err != nil || slot != 0 {
		t.Fatalf("re-admission: slot %d, err %v", slot, err)
	}
	// The new occupant's first dequeue must carry a tag anchored at the
	// shared virtual time (still 0 — nothing entered service), not at the
	// evicted stream's multi-megabyte finish.
	if !r.Submit(2, qm.Frame{Size: 8, Arrival: 0}) {
		t.Fatal("submit refused")
	}
	h, ok := r.Manager(0).Source(0).NextHead()
	if !ok {
		t.Fatal("dequeue failed")
	}
	if h.Tag > 8 {
		t.Fatalf("reused slot inherited stale finish tag: %d", h.Tag)
	}
}
