package shard

import (
	"fmt"

	"repro/internal/obs"
)

// RegisterMetrics publishes the router's dispatcher and throughput view on
// reg under prefix (canonically "shard"): per-shard delivered-frame counters
// (prefix.shardK.delivered, atomic — safe to scrape mid-run), the aggregate
// prefix.delivered, prefix.placement_imbalance (max over mean streams per
// shard, the flow-hash skew after admission), and prefix.delivery_imbalance
// (max over mean delivered frames, the live dispatcher skew; 1.0 is a
// perfectly even run, 0 means nothing delivered yet).
//
// Call it after New and before Run; the placement gauge assumes admission is
// complete by the time it is scraped.
// When the delay-driven shared buffer pool is configured (Config.BufferPool)
// each shard additionally publishes its Queue Manager's accounting and pool
// lending ledger under prefix.shardK.qm.*, plus a prefix.shardK.qm.delay
// histogram of measured head queueing delays in modeled service rounds (the
// signal that drives lending — modeled time, never the wall clock).
func (r *Router) RegisterMetrics(reg *obs.Registry, prefix string) {
	for _, s := range r.shards {
		s.delivered = reg.Counter(fmt.Sprintf("%s.shard%d.delivered", prefix, s.index), "frames")
	}
	if r.cfg.BufferPool.Reservation > 0 {
		for _, s := range r.shards {
			qmPrefix := fmt.Sprintf("%s.shard%d.qm", prefix, s.index)
			s.manager.SetDelayHistogram(reg.Histogram(qmPrefix+".delay", "rounds"))
			s.manager.RegisterMetrics(reg, qmPrefix)
		}
	}
	reg.GaugeFunc(prefix+".delivered", "frames", func() float64 {
		var total uint64
		for _, s := range r.shards {
			total += s.delivered.Load()
		}
		return float64(total)
	})
	reg.GaugeFunc(prefix+".placement_imbalance", "ratio", func() float64 {
		var max, total int
		for _, s := range r.shards {
			n := int(s.occupied.Load())
			total += n
			if n > max {
				max = n
			}
		}
		if total == 0 {
			return 0
		}
		mean := float64(total) / float64(len(r.shards))
		return float64(max) / mean
	})
	reg.GaugeFunc(prefix+".delivery_imbalance", "ratio", func() float64 {
		var max, total uint64
		for _, s := range r.shards {
			d := s.delivered.Load()
			total += d
			if d > max {
				max = d
			}
		}
		if total == 0 {
			return 0
		}
		mean := float64(total) / float64(len(r.shards))
		return float64(max) / mean
	})
}
