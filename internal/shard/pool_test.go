package shard

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/qm"
)

// pooledRouter builds a router whose shards run the delay-driven shared
// buffer pool with a deliberately tiny reservation, so any sustained burst
// must borrow from the pool.
func pooledRouter(t *testing.T, shards, slotsPerShard int, pool qm.SharedConfig, rtc bool) *Router {
	t.Helper()
	return mustRouter(t, Config{
		Shards:          shards,
		SlotsPerShard:   slotsPerShard,
		BufferPool:      pool,
		RunToCompletion: rtc,
	})
}

// admitHotCold admits hot streams onto one shard and cold streams onto
// another by probing flow-hash homes, returning total admitted. The hot
// shard carries a weighted burst load; the cold shard nearly idles.
func admitHotCold(t *testing.T, r *Router, hot, cold int) int {
	t.Helper()
	hotShard, coldShard := -1, -1
	admitted := 0
	for id := StreamID(0); admitted < hot+cold; id++ {
		if id > 1<<16 {
			t.Fatalf("flow hash failed to fill hot/cold shards")
		}
		k := r.ShardOf(id)
		switch {
		case hotShard == -1 || k == hotShard:
			if r.ShardStreams(k) >= hot {
				continue
			}
			hotShard = k
		case coldShard == -1 || k == coldShard:
			if r.ShardStreams(k) >= cold {
				continue
			}
			coldShard = k
		default:
			continue
		}
		if err := r.Admit(id, edfSpec(4)); err != nil {
			t.Fatalf("Admit(%d): %v", id, err)
		}
		admitted++
	}
	return admitted
}

// poolQuiescent asserts every shard's lending ledger conserved credits:
// all lent capacity returned, borrows matched by reclaims. It returns the
// total borrows so callers can assert lending actually happened.
func poolQuiescent(t *testing.T, r *Router) uint64 {
	t.Helper()
	var borrows uint64
	for _, s := range r.shards {
		st, ok := s.manager.PoolStats()
		if !ok {
			t.Fatalf("shard %d has no pool", s.index)
		}
		if st.Free != int64(st.Burst) || st.Lent != 0 {
			t.Fatalf("shard %d leaked pool credits: %+v", s.index, st)
		}
		if st.Borrows != st.Reclaims {
			t.Fatalf("shard %d borrows %d != reclaims %d", s.index, st.Borrows, st.Reclaims)
		}
		borrows += st.Borrows
	}
	return borrows
}

// The satellite chaos scenario: weighted hot/cold shard bursts with the
// shared pool lending capacity — every frame conserved, every credit
// returned, in both the classic three-goroutine loop and run-to-completion.
func TestPooledHotColdBurstConservation(t *testing.T) {
	const perStream = 400
	pool := qm.SharedConfig{Reservation: 1, Burst: 64, DelayTarget: 64}
	for _, tc := range []struct {
		name string
		rtc  bool
	}{{"classic", false}, {"run-to-completion", true}} {
		t.Run(tc.name, func(t *testing.T) {
			r := pooledRouter(t, 2, 8, pool, tc.rtc)
			streams := admitHotCold(t, r, 8, 2)
			res, err := r.Run(perStream)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			want := uint64(streams * perStream)
			if res.Frames != want {
				t.Fatalf("delivered %d frames, want %d", res.Frames, want)
			}
			for _, sr := range res.PerShard {
				if sr.QM.Submitted != sr.Frames || sr.QM.Dequeued != sr.Frames {
					t.Fatalf("shard %d QM accounting %+v for %d frames", sr.Shard, sr.QM, sr.Frames)
				}
				if sr.QM.Dropped != 0 {
					t.Fatalf("shard %d dropped %d under backpressure", sr.Shard, sr.QM.Dropped)
				}
			}
			if borrows := poolQuiescent(t, r); borrows == 0 {
				t.Fatal("hot/cold burst run never lent a credit — the pool was not exercised")
			}
		})
	}
}

// The pool's lending ledger and delay histogram surface through the router
// metrics, and an instrumented pooled run stays conserved.
func TestPooledRunMetrics(t *testing.T) {
	const perStream = 200
	r := pooledRouter(t, 2, 4, qm.SharedConfig{Reservation: 1, Burst: 32, DelayTarget: 64}, true)
	if _, err := r.AdmitBalanced(8, edfSpec(4)); err != nil {
		t.Fatalf("AdmitBalanced: %v", err)
	}
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg, "shard")
	res, err := r.Run(perStream)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Frames != 8*perStream {
		t.Fatalf("delivered %d frames", res.Frames)
	}
	snap := reg.Snapshot()
	var sawLedger, sawDelay bool
	for _, m := range snap.Metrics {
		switch m.Name {
		case "shard.shard0.qm.pool.free":
			sawLedger = true
		case "shard.shard0.qm.delay":
			sawDelay = true
			if m.Count == 0 {
				t.Fatal("delay histogram recorded nothing")
			}
		}
	}
	if !sawLedger || !sawDelay {
		t.Fatalf("pool metrics missing: ledger=%v delay=%v", sawLedger, sawDelay)
	}
}

// Fault injection on top of the shared pool: supervised rounds crash and
// restart shards while the pool lends, and both invariants hold at the end —
// frame conservation (delivered + dropped == target) and credit conservation
// (every borrow reclaimed, even through the dead-shard salvage drain).
func TestPooledSupervisedChaosConservation(t *testing.T) {
	sched, err := fault.NewSchedule(fault.Profile{Seed: 7, Shards: 2, ShardCrashes: 2, Horizon: 300})
	if err != nil {
		t.Fatal(err)
	}
	r := pooledRouter(t, 2, 4, qm.SharedConfig{Reservation: 1, Burst: 32, DelayTarget: 64}, false)
	if _, err := r.AdmitBalanced(8, edfSpec(4)); err != nil {
		t.Fatalf("AdmitBalanced: %v", err)
	}
	var tr fault.Trace
	res, err := r.RunSupervised(150, sched, RecoveryConfig{}, &tr)
	if err != nil {
		t.Fatalf("%v\n%s", err, tr.String())
	}
	if res.Delivered+res.Dropped != res.Target {
		t.Fatalf("conservation: delivered %d + dropped %d != target %d\n%s",
			res.Delivered, res.Dropped, res.Target, tr.String())
	}
	poolQuiescent(t, r)
}
