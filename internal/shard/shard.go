// Package shard implements the sharded ShareStreams endsystem router: K
// independent core.Scheduler instances run concurrently, one pipeline per
// shard, each with its own Queue Manager, per-stream SPSC rings, PCI bus
// and transmission ring. The paper's §5.2 operating points show the Stream
// processor — 2130 ns of host cost per packet — is the endsystem
// bottleneck, not the scheduler; sharding divides that host cost across
// cores so aggregate decision throughput grows with parallelism instead of
// being capped by one goroutine.
//
// Streams are mapped to shards by an FNV-1a flow hash over the 64-bit
// stream ID, so every frame of a stream lands on the same scheduler and
// in-stream order is preserved; there is no cross-shard state of any kind.
// An aggregator merges the per-shard regblock.Counters and bandwidth series
// into one endsystem view.
//
// # Modeled time
//
// Shards run in parallel, so the modeled completion time of a sharded run
// is the maximum over the per-shard virtual times (host cost plus metered
// transfers), not their sum — the slowest shard finishes last. Aggregate
// packets/s is total frames over that maximum, which keeps sharded numbers
// directly comparable to the single-scheduler §5.2 operating points: K
// evenly loaded shards deliver K times the single-pipeline rate. Run also
// reports wall-clock throughput of the simulation itself, which is what
// actually scales with host cores.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/obs"
	"repro/internal/pci"
	"repro/internal/qm"
	"repro/internal/regblock"
	"repro/internal/ringbuf"
	"repro/internal/stats"
)

// DefaultHostNs is the calibrated per-packet Stream-processor cost
// (endsystem.HostCostNs; restated here because the endsystem driver layers
// on top of this package).
const DefaultHostNs = 2130.0

// errCanceled marks a shard that aborted because a sibling failed.
var errCanceled = errors.New("shard: run canceled")

// schedulerBatchCycles is how many decision cycles each shard hands its
// scheduler per core.RunCycles call; cancellation is still observed inside
// the visit callback (on ring backpressure) and between batches.
const schedulerBatchCycles = 256

// StreamID identifies a stream across the whole sharded endsystem; the
// per-shard slot indices are an internal detail of the dispatcher.
type StreamID uint64

// Config parameterizes a sharded router. Zero fields take defaults.
type Config struct {
	// Shards is the scheduler-instance count K (≥ 1).
	Shards int
	// SlotsPerShard is each scheduler's stream-slot count (a power of
	// two ≥ 2, like core.Config.Slots).
	SlotsPerShard int
	// RingCapacity is the per-stream SPSC ring capacity (a power of two;
	// default 1024).
	RingCapacity int
	// TxRingCapacity is each shard's scheduled-ID ring capacity (a power
	// of two; default 1024).
	TxRingCapacity int
	// FrameBytes is the frame size Run produces (default 1500).
	FrameBytes int
	// HostNs is the modeled per-packet Stream-processor cost (default
	// DefaultHostNs, the §5.2 calibration).
	HostNs float64
	// Mode selects PCI transfer metering; each shard meters its own bus.
	Mode pci.Mode
	// TransferBatch is the frames per metered PCI batch (default 32).
	TransferBatch int
	// MeterWindows is the number of bandwidth measurement windows across
	// the run (default 32).
	MeterWindows int
	// Program is the rank program every shard's scheduler runs (the
	// comparator mode follows from it). The zero value, ProgramDWCS, is the
	// full Table-2 datapath — the historical behavior. Admitted specs must
	// still be legal under the derived mode (core.Admit enforces this).
	Program decision.Program
	// RunToCompletion selects the run-to-completion shard loop for Run:
	// instead of three goroutines per shard (producer, scheduler,
	// transmission engine) handing frames across spin-waited SPSC rings,
	// one goroutine per shard pins its OS thread (runtime.LockOSThread)
	// and runs produce → schedule → transmit phases to completion in
	// batched epochs, publishing the delivered-frame counter and the
	// bandwidth meter once per epoch instead of once per frame. Modeled
	// time, per-slot accounting, PCI metering and the SPSC ring contracts
	// are unchanged — each ring still has exactly one producer and one
	// consumer, they just alternate phases on the same thread — so results
	// are equivalent; what changes is that the simulation stops paying
	// cross-goroutine handoffs and per-frame atomics on the hot path.
	// RunSupervised ignores the flag: the supervisor's barrier-phased
	// rounds and fault injection run exactly as before.
	RunToCompletion bool
	// BufferPool, when its Reservation is non-zero, replaces each shard's
	// fixed per-stream rings (RingCapacity) with the Queue Manager's
	// delay-driven shared buffer pool (qm.NewShared): every stream keeps a
	// guaranteed reservation and a per-shard burst pool lends the rest by
	// measured queueing delay, so a hot stream bursting through a draining
	// queue can hold far more than an even split while a wedged stream is
	// capped at its reservation. The zero value keeps the historical fixed
	// rings. The pool is per shard — there is still no cross-shard state.
	BufferPool qm.SharedConfig
}

// withDefaults returns cfg with zero fields filled in.
func (c Config) withDefaults() Config {
	if c.RingCapacity == 0 {
		c.RingCapacity = 1024
	}
	if c.TxRingCapacity == 0 {
		c.TxRingCapacity = 1024
	}
	if c.FrameBytes == 0 {
		c.FrameBytes = 1500
	}
	if c.HostNs == 0 {
		c.HostNs = DefaultHostNs
	}
	if c.TransferBatch == 0 {
		c.TransferBatch = 32
	}
	if c.MeterWindows == 0 {
		c.MeterWindows = 32
	}
	return c
}

// Validate checks the (defaulted) configuration; ring capacities and the
// slot count are validated by the packages that consume them.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: %d shards", c.Shards)
	}
	if c.FrameBytes < 1 {
		return fmt.Errorf("shard: frame size %d", c.FrameBytes)
	}
	if c.HostNs <= 0 {
		return fmt.Errorf("shard: host cost %v ns", c.HostNs)
	}
	if c.TransferBatch < 1 {
		return fmt.Errorf("shard: transfer batch %d", c.TransferBatch)
	}
	if c.MeterWindows < 1 {
		return fmt.Errorf("shard: %d meter windows", c.MeterWindows)
	}
	return nil
}

// location is a stream's placement: which shard, which local slot.
type location struct {
	shard int
	slot  int
}

// shardState is one shard: a full endsystem pipeline's worth of parts.
type shardState struct {
	index   int
	manager *qm.Manager
	sched   *core.Scheduler
	txRing  *ringbuf.Ring[core.Transmission]
	bus     *pci.Bus
	streams []StreamID // admitted streams in slot order (batch admission)

	// Slot occupancy, maintained by both batch Admit and the live-mode slot
	// lifecycle (AdmitLive/EvictLive): used[i] marks slot i bound to ids[i],
	// occupied counts the used slots. Batch admission fills slots densely so
	// occupied == len(streams) until the first live eviction. used/ids belong
	// to the admitting goroutine; occupied is atomic because the obs
	// placement gauge scrapes it while a live control plane mutates slots.
	used     []bool
	ids      []StreamID
	occupied atomic.Int64

	// delivered, when RegisterMetrics has attached it, counts frames the
	// shard's transmission engine has drained — atomic, so the obs scrape
	// goroutine reads it live without racing the pipeline.
	delivered *obs.Counter
}

// Router is the sharded endsystem: the flow-hash dispatcher in front of K
// independent scheduler pipelines.
type Router struct {
	cfg    Config
	shards []*shardState
	byID   map[StreamID]location
	ran    bool
	live   bool // StartLive was called: slot lifecycle is dynamic, batch Run is barred
}

// New builds a router with cfg.Shards empty shards.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg, byID: make(map[StreamID]location)}
	for k := 0; k < cfg.Shards; k++ {
		var manager *qm.Manager
		var err error
		if cfg.BufferPool.Reservation > 0 {
			manager, err = qm.NewShared(cfg.SlotsPerShard, cfg.BufferPool)
		} else {
			manager, err = qm.New(cfg.SlotsPerShard, cfg.RingCapacity)
		}
		if err != nil {
			return nil, err
		}
		sched, err := core.New(core.Config{
			Slots:   cfg.SlotsPerShard,
			Mode:    cfg.Program.Mode(),
			Routing: core.WinnerOnly,
		})
		if err != nil {
			return nil, err
		}
		txRing, err := ringbuf.New[core.Transmission](cfg.TxRingCapacity)
		if err != nil {
			return nil, err
		}
		bus, err := pci.New(pci.DefaultConfig())
		if err != nil {
			return nil, err
		}
		r.shards = append(r.shards, &shardState{
			index:   k,
			manager: manager,
			sched:   sched,
			txRing:  txRing,
			bus:     bus,
			used:    make([]bool, cfg.SlotsPerShard),
			ids:     make([]StreamID, cfg.SlotsPerShard),
		})
	}
	return r, nil
}

// Shards returns the shard count K.
func (r *Router) Shards() int { return len(r.shards) }

// Streams returns the number of admitted streams.
func (r *Router) Streams() int { return len(r.byID) }

// ShardStreams returns how many streams shard k carries (0 when k is out
// of range). Batch admission fills slots densely, so this equals the batch
// admit count until live evictions open holes.
func (r *Router) ShardStreams(k int) int {
	if k < 0 || k >= len(r.shards) {
		return 0
	}
	return int(r.shards[k].occupied.Load())
}

// ShardOf returns stream id's home shard: an FNV-1a flow hash over the
// 64-bit ID reduced modulo the shard count. The mapping is deterministic,
// so every frame of a stream reaches the same scheduler and in-stream
// ordering is preserved across the whole run.
func (r *Router) ShardOf(id StreamID) int {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	x := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return int(h % uint64(len(r.shards)))
}

// Admit binds stream id to its flow-hashed home shard's next free slot. It
// fails when the home shard is full — flow-hash admission control: the
// dispatcher never re-homes a stream, exactly as a hash on the wire
// wouldn't.
func (r *Router) Admit(id StreamID, spec attr.Spec) error {
	if r.ran {
		return fmt.Errorf("shard: Admit after Run")
	}
	if _, dup := r.byID[id]; dup {
		return fmt.Errorf("shard: stream %d already admitted", id)
	}
	k := r.ShardOf(id)
	s := r.shards[k]
	slot := len(s.streams)
	if slot >= r.cfg.SlotsPerShard {
		return fmt.Errorf("shard: stream %d rejected: home shard %d is full (%d slots)",
			id, k, r.cfg.SlotsPerShard)
	}
	if err := s.manager.Describe(slot, spec); err != nil {
		return err
	}
	if err := s.manager.SetProgram(slot, r.cfg.Program); err != nil {
		return err
	}
	if err := s.sched.Admit(slot, spec, s.manager.Source(slot)); err != nil {
		return err
	}
	s.streams = append(s.streams, id)
	s.used[slot] = true
	s.ids[slot] = id
	s.occupied.Add(1)
	r.byID[id] = location{shard: k, slot: slot}
	return nil
}

// AdmitBalanced admits total streams with the given spec, walking candidate
// IDs upward from 0 and skipping IDs whose home shard already holds its
// fair share (⌈total/K⌉) — an even fill under flow-hash placement, for
// drivers and benchmarks that want every shard equally loaded. It returns
// the admitted IDs.
func (r *Router) AdmitBalanced(total int, spec attr.Spec) ([]StreamID, error) {
	if total < 1 || total > r.cfg.Shards*r.cfg.SlotsPerShard {
		return nil, fmt.Errorf("shard: %d streams don't fit %d×%d slots",
			total, r.cfg.Shards, r.cfg.SlotsPerShard)
	}
	quota := (total + r.cfg.Shards - 1) / r.cfg.Shards
	if quota > r.cfg.SlotsPerShard {
		quota = r.cfg.SlotsPerShard
	}
	ids := make([]StreamID, 0, total)
	for id := StreamID(0); len(ids) < total; id++ {
		if id > 1<<20 {
			return nil, fmt.Errorf("shard: flow hash failed to fill %d shards evenly", r.cfg.Shards)
		}
		if _, dup := r.byID[id]; dup {
			continue
		}
		if len(r.shards[r.ShardOf(id)].streams) >= quota {
			continue
		}
		if err := r.Admit(id, spec); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Submit dispatches one frame of stream id to its shard's Queue Manager,
// reporting false for unknown streams or a full ring. The per-stream rings
// are SPSC: at most one goroutine may submit into any given shard (Run
// drives its own internal producers, so external Submits must not overlap
// a Run).
func (r *Router) Submit(id StreamID, f qm.Frame) bool {
	loc, ok := r.byID[id]
	if !ok {
		return false
	}
	return r.shards[loc.shard].manager.Submit(loc.slot, f)
}

// Backlog returns stream id's queued frame count (0 for unknown streams).
func (r *Router) Backlog(id StreamID) int {
	loc, ok := r.byID[id]
	if !ok {
		return 0
	}
	return r.shards[loc.shard].manager.Backlog(loc.slot)
}

// ShardResult reports one shard's pipeline run.
type ShardResult struct {
	Shard      int
	Streams    int
	Frames     uint64
	PerSlot    []uint64 // frames delivered per local slot
	Decisions  uint64
	IdleCycles uint64
	// VirtualNs is the shard's modeled time: host cost for every frame
	// plus the transfers metered on its own bus.
	VirtualNs  float64
	TransferNs float64
	Counters   regblock.Counters
	QM         qm.StreamStats
	// Bandwidth is the shard's aggregate MB/s series over modeled time.
	Bandwidth []stats.Point
}

// Result is the aggregated view of a sharded run.
type Result struct {
	Shards   int
	Streams  int
	Frames   uint64
	PerShard []ShardResult
	// Counters merges every shard's hardware performance counters.
	Counters regblock.Counters
	// Bandwidth sums the per-shard series window by window.
	Bandwidth []stats.Point
	// VirtualNs is the modeled completion time: the maximum over shards
	// (they run in parallel; the slowest finishes last).
	VirtualNs float64
	// PacketsPerS is the aggregate modeled throughput, Frames over
	// VirtualNs — comparable to the §5.2 single-pipeline operating
	// points.
	PacketsPerS float64
	// WallNs and WallPacketsPerS measure the simulation itself: real
	// elapsed time and frames over it. This is the number that scales
	// with host cores.
	WallNs          float64
	WallPacketsPerS float64
}

// MergeCounters sums hardware performance counters across shards into one
// endsystem-wide view.
func MergeCounters(cs ...regblock.Counters) regblock.Counters {
	var t regblock.Counters
	for _, c := range cs {
		t.Wins += c.Wins
		t.Services += c.Services
		t.Met += c.Met
		t.Missed += c.Missed
		t.Drops += c.Drops
		t.Violations += c.Violations
	}
	return t
}

// Run pushes framesPerStream frames through every admitted stream: each
// shard concurrently runs the full Figure 3 pipeline — a producer filling
// its Queue Manager's per-stream rings, the scheduler loop draining them
// into the shard's tx ring with PCI batches metered on the shard's own
// bus, and a transmission-engine consumer — then the per-shard results are
// merged. Run may be called once per Router.
func (r *Router) Run(framesPerStream int) (*Result, error) {
	if r.ran {
		return nil, fmt.Errorf("shard: Run called twice")
	}
	if framesPerStream < 1 {
		return nil, fmt.Errorf("shard: %d frames per stream", framesPerStream)
	}
	if len(r.byID) == 0 {
		return nil, fmt.Errorf("shard: no streams admitted")
	}
	r.ran = true

	// One window size for every shard keeps the per-shard bandwidth
	// series index-aligned, so the aggregator can sum them window by
	// window.
	maxStreams := 0
	for _, s := range r.shards {
		if len(s.streams) > maxStreams {
			maxStreams = len(s.streams)
		}
	}
	windowNs := float64(maxStreams*framesPerStream) * r.cfg.HostNs / float64(r.cfg.MeterWindows)

	// A failure in any shard cancels every spin loop in every shard.
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	results := make([]ShardResult, len(r.shards))
	errCh := make(chan error, len(r.shards))
	var wg sync.WaitGroup
	start := time.Now() //sslint:allow walltime — aggregate throughput is reported in real wall-clock terms
	for _, s := range r.shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			run := r.runShard
			if r.cfg.RunToCompletion {
				run = r.runShardRTC
			}
			res, err := run(s, framesPerStream, windowNs, stop, cancel)
			if err != nil {
				cancel()
				errCh <- fmt.Errorf("shard %d: %w", s.index, err)
				return
			}
			results[s.index] = res
		}(s)
	}
	wg.Wait()
	wallNs := float64(time.Since(start)) //sslint:allow walltime — wall-clock scaling: aggregate throughput is reported in real elapsed time by design
	close(errCh)
	var failures, cancellations []error
	for err := range errCh {
		if errors.Is(err, errCanceled) {
			cancellations = append(cancellations, err)
			continue
		}
		failures = append(failures, err)
	}
	if len(failures) > 0 {
		// Every real failure is reported, each annotated with its shard
		// index; sibling cancellations are consequences, not causes, and are
		// dropped when a root cause exists. Sort for a deterministic join
		// order — errCh receives in goroutine-completion order.
		sort.Slice(failures, func(i, j int) bool { return failures[i].Error() < failures[j].Error() })
		return nil, errors.Join(failures...)
	}
	if len(cancellations) > 0 {
		return nil, cancellations[0]
	}

	out := &Result{
		Shards:   len(r.shards),
		Streams:  len(r.byID),
		PerShard: results,
		WallNs:   wallNs,
	}
	series := make([][]stats.Point, 0, len(results))
	for _, sr := range results {
		out.Frames += sr.Frames
		out.Counters = MergeCounters(out.Counters, sr.Counters)
		if sr.VirtualNs > out.VirtualNs {
			out.VirtualNs = sr.VirtualNs
		}
		series = append(series, sr.Bandwidth)
	}
	out.Bandwidth = stats.SumSeries(series...)
	if out.VirtualNs > 0 {
		out.PacketsPerS = float64(out.Frames) / out.VirtualNs * 1e9
	}
	if wallNs > 0 {
		out.WallPacketsPerS = float64(out.Frames) / wallNs * 1e9
	}
	return out, nil
}

// runShard executes one shard's pipeline to completion.
func (r *Router) runShard(s *shardState, framesPerStream int, windowNs float64, stop <-chan struct{}, cancel func()) (ShardResult, error) {
	cfg := r.cfg
	n := len(s.streams)
	res := ShardResult{Shard: s.index, Streams: n, PerSlot: make([]uint64, cfg.SlotsPerShard)}
	if err := s.sched.Start(); err != nil {
		return res, err
	}
	total := uint64(n) * uint64(framesPerStream)
	if total == 0 {
		// Nothing flow-hashed here; the shard idles out the run.
		return res, nil
	}
	meter, err := stats.NewBandwidthMeter(1, windowNs)
	if err != nil {
		return res, err
	}

	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	fail := func(err error) (ShardResult, error) {
		cancel()
		wg.Wait()
		return res, err
	}

	// Producer: one per shard, so the per-stream rings stay SPSC.
	go func() {
		defer wg.Done()
		for k := 0; k < framesPerStream; k++ {
			for slot := 0; slot < n; slot++ {
				f := qm.Frame{Size: cfg.FrameBytes, Arrival: uint64(k)}
				for !s.manager.Submit(slot, f) {
					if stopped() {
						return
					}
					runtime.Gosched() // ring full: wait for the scheduler
				}
			}
		}
	}()

	// Transmission engine: drains scheduled IDs, metering delivered bytes
	// against the shard's modeled clock (one host cost per frame).
	var delivered uint64
	go func() {
		defer wg.Done()
		for delivered < total {
			tx, ok := s.txRing.Pop()
			if !ok {
				if stopped() {
					return
				}
				runtime.Gosched()
				continue
			}
			res.PerSlot[tx.Slot]++
			delivered++
			if s.delivered != nil {
				s.delivered.Inc()
			}
			// Record cannot fail here: stream 0 exists and the modeled
			// clock is monotone.
			_ = meter.Record(0, cfg.FrameBytes, float64(delivered)*cfg.HostNs)
		}
	}()

	// Scheduler loop (this goroutine).
	meterBatch := s.bus.BatchMeter(cfg.Mode)
	var scheduled, sinceBatch uint64
	var loopErr error
	for scheduled < total && loopErr == nil {
		if stopped() {
			return fail(errCanceled)
		}
		s.sched.RunCycles(schedulerBatchCycles, func(cr *core.CycleResult) bool {
			if cr.Idle {
				runtime.Gosched() // producer momentarily behind
			}
			for _, tx := range cr.Transmissions {
				for !s.txRing.Push(tx) {
					if stopped() {
						loopErr = errCanceled
						return false
					}
					runtime.Gosched() // tx ring full: engine backpressure
				}
				scheduled++
				sinceBatch++
				if sinceBatch == uint64(cfg.TransferBatch) {
					if err := meterBatch(cfg.TransferBatch); err != nil {
						loopErr = err
						return false
					}
					sinceBatch = 0
				}
			}
			return scheduled < total
		})
	}
	if loopErr != nil {
		return fail(loopErr)
	}
	if sinceBatch > 0 {
		if err := meterBatch(int(sinceBatch)); err != nil {
			return fail(err)
		}
	}
	wg.Wait()
	meter.Finish()

	res.Frames = delivered
	res.Decisions = s.sched.Decisions()
	res.IdleCycles = s.sched.IdleCycles()
	res.TransferNs = s.bus.BusyNs
	res.VirtualNs = float64(total)*cfg.HostNs + s.bus.BusyNs
	res.Counters = s.sched.Totals()
	res.QM = s.manager.Totals()
	res.Bandwidth = meter.Series(0)
	return res, nil
}

// rtcIdleLimit bounds consecutive run-to-completion epochs without progress
// before the shard declares itself wedged — a safety valve against a
// misaccounted target, not a modeled timeout.
const rtcIdleLimit = 1 << 14

// runShardRTC is runShard in run-to-completion form: the calling goroutine
// pins its OS thread and cycles produce → schedule → transmit epochs until
// the shard's share of the run is delivered. Each epoch tops up every
// stream ring from the frame iterator, hands the scheduler one
// schedulerBatchCycles batch (draining the tx ring inline when it fills —
// this thread owns both ends), drains the scheduled IDs, and only then
// publishes the epoch's deliveries: one atomic Add on the obs counter and
// one batched bandwidth-meter record, instead of a per-frame Inc and
// Record. Ring contracts stay SPSC — one producer, one consumer, in
// alternating phases on one thread.
func (r *Router) runShardRTC(s *shardState, framesPerStream int, windowNs float64, stop <-chan struct{}, cancel func()) (ShardResult, error) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	cfg := r.cfg
	n := len(s.streams)
	res := ShardResult{Shard: s.index, Streams: n, PerSlot: make([]uint64, cfg.SlotsPerShard)}
	if err := s.sched.Start(); err != nil {
		return res, err
	}
	total := uint64(n) * uint64(framesPerStream)
	if total == 0 {
		// Nothing flow-hashed here; the shard idles out the run.
		return res, nil
	}
	meter, err := stats.NewBandwidthMeter(1, windowNs)
	if err != nil {
		return res, err
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	meterBatch := s.bus.BatchMeter(cfg.Mode)
	produced := make([]uint64, n)
	var delivered, scheduled, sinceBatch, epochDelivered uint64
	drainOne := func() bool {
		tx, ok := s.txRing.Pop()
		if !ok {
			return false
		}
		res.PerSlot[tx.Slot]++
		delivered++
		epochDelivered++
		return true
	}
	idleEpochs := 0
	for delivered < total {
		if stopped() {
			return res, errCanceled
		}
		progressed := false
		// Produce: top up every stream ring from the frame iterator.
		for slot := 0; slot < n; slot++ {
			for produced[slot] < uint64(framesPerStream) {
				if !s.manager.Submit(slot, qm.Frame{Size: cfg.FrameBytes, Arrival: produced[slot]}) {
					break // ring full: the scheduler phase makes room
				}
				produced[slot]++
				progressed = true
			}
		}
		// Schedule: one batched epoch.
		var loopErr error
		s.sched.RunCycles(schedulerBatchCycles, func(cr *core.CycleResult) bool {
			for _, tx := range cr.Transmissions {
				for !s.txRing.Push(tx) {
					drainOne() // tx ring full: consume in place
				}
				scheduled++
				progressed = true
				sinceBatch++
				if sinceBatch == uint64(cfg.TransferBatch) {
					sinceBatch = 0
					if err := meterBatch(cfg.TransferBatch); err != nil {
						loopErr = err
						return false
					}
				}
			}
			return scheduled < total
		})
		if loopErr != nil {
			return res, loopErr
		}
		// Transmit: drain what this epoch scheduled.
		for drainOne() {
			progressed = true
		}
		// Publish: the epoch's deliveries land in one batched flush.
		if epochDelivered > 0 {
			if s.delivered != nil {
				s.delivered.Add(epochDelivered)
			}
			// Record cannot fail: stream 0 exists and the modeled clock
			// (delivered count × host cost) is monotone.
			_ = meter.Record(0, int(epochDelivered)*cfg.FrameBytes, float64(delivered)*cfg.HostNs)
			epochDelivered = 0
		}
		if progressed {
			idleEpochs = 0
		} else if idleEpochs++; idleEpochs > rtcIdleLimit {
			return res, fmt.Errorf("run-to-completion pipeline wedged: %d/%d delivered", delivered, total)
		}
	}
	if sinceBatch > 0 {
		if err := meterBatch(int(sinceBatch)); err != nil {
			return res, err
		}
	}
	meter.Finish()

	res.Frames = delivered
	res.Decisions = s.sched.Decisions()
	res.IdleCycles = s.sched.IdleCycles()
	res.TransferNs = s.bus.BusyNs
	res.VirtualNs = float64(total)*cfg.HostNs + s.bus.BusyNs
	res.Counters = s.sched.Totals()
	res.QM = s.manager.Totals()
	res.Bandwidth = meter.Series(0)
	return res, nil
}
