package shard

import (
	"math"
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/pci"
	"repro/internal/qm"
	"repro/internal/regblock"
)

func edfSpec(slots int) attr.Spec {
	return attr.Spec{Class: attr.EDF, Period: uint16(slots)}
}

func mustRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Shards: 0, SlotsPerShard: 4},
		{Shards: -1, SlotsPerShard: 4},
		{Shards: 2, SlotsPerShard: 3}, // not a power of two
		{Shards: 2, SlotsPerShard: 4, HostNs: -1},
		{Shards: 2, SlotsPerShard: 4, FrameBytes: -5},
		{Shards: 2, SlotsPerShard: 4, TransferBatch: -1},
		{Shards: 2, SlotsPerShard: 4, MeterWindows: -1},
		{Shards: 2, SlotsPerShard: 4, RingCapacity: 3}, // not a power of two
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
}

func TestShardOfDeterministicAndInRange(t *testing.T) {
	r := mustRouter(t, Config{Shards: 4, SlotsPerShard: 4})
	seen := make(map[int]bool)
	for id := StreamID(0); id < 256; id++ {
		k := r.ShardOf(id)
		if k < 0 || k >= 4 {
			t.Fatalf("ShardOf(%d) = %d out of range", id, k)
		}
		if k2 := r.ShardOf(id); k2 != k {
			t.Fatalf("ShardOf(%d) not deterministic: %d then %d", id, k, k2)
		}
		seen[k] = true
	}
	// FNV-1a over 256 consecutive IDs must touch every one of 4 shards.
	if len(seen) != 4 {
		t.Fatalf("flow hash reached only %d/4 shards", len(seen))
	}
}

func TestAdmitFlowHashPlacementAndShardFull(t *testing.T) {
	r := mustRouter(t, Config{Shards: 2, SlotsPerShard: 2})
	// Find three IDs hashing to the same shard: the third must be rejected
	// (flow-hash admission control never re-homes a stream).
	var same []StreamID
	home := -1
	for id := StreamID(0); len(same) < 3; id++ {
		k := r.ShardOf(id)
		if home == -1 {
			home = k
		}
		if k == home {
			same = append(same, id)
		}
	}
	spec := edfSpec(2)
	if err := r.Admit(same[0], spec); err != nil {
		t.Fatalf("Admit(%d): %v", same[0], err)
	}
	if err := r.Admit(same[0], spec); err == nil {
		t.Fatalf("duplicate Admit accepted")
	}
	if err := r.Admit(same[1], spec); err != nil {
		t.Fatalf("Admit(%d): %v", same[1], err)
	}
	err := r.Admit(same[2], spec)
	if err == nil {
		t.Fatalf("Admit(%d) into full shard %d accepted", same[2], home)
	}
	if !strings.Contains(err.Error(), "full") {
		t.Fatalf("shard-full error %q doesn't say so", err)
	}
	if got := r.ShardStreams(home); got != 2 {
		t.Fatalf("home shard carries %d streams, want 2", got)
	}
}

func TestAdmitBalancedEvenLoading(t *testing.T) {
	r := mustRouter(t, Config{Shards: 4, SlotsPerShard: 8})
	ids, err := r.AdmitBalanced(16, edfSpec(8))
	if err != nil {
		t.Fatalf("AdmitBalanced: %v", err)
	}
	if len(ids) != 16 || r.Streams() != 16 {
		t.Fatalf("admitted %d ids / %d streams, want 16", len(ids), r.Streams())
	}
	for k := 0; k < 4; k++ {
		if got := r.ShardStreams(k); got != 4 {
			t.Fatalf("shard %d carries %d streams, want 4 (balanced)", k, got)
		}
	}
	// Every returned ID must live on its flow-hashed home shard.
	for _, id := range ids {
		if r.Backlog(id) != 0 {
			t.Fatalf("fresh stream %d has backlog", id)
		}
	}
	if _, err := r.AdmitBalanced(1000, edfSpec(8)); err == nil {
		t.Fatalf("AdmitBalanced over capacity accepted")
	}
}

func TestSubmitDispatchAndBacklog(t *testing.T) {
	r := mustRouter(t, Config{Shards: 2, SlotsPerShard: 4})
	ids, err := r.AdmitBalanced(4, edfSpec(4))
	if err != nil {
		t.Fatalf("AdmitBalanced: %v", err)
	}
	id := ids[0]
	if r.Submit(StreamID(9999), qm.Frame{Size: 100}) {
		t.Fatalf("Submit to unknown stream accepted")
	}
	if r.Backlog(StreamID(9999)) != 0 {
		t.Fatalf("unknown stream reports backlog")
	}
	for k := 0; k < 3; k++ {
		if !r.Submit(id, qm.Frame{Size: 100, Arrival: uint64(k)}) {
			t.Fatalf("Submit %d rejected", k)
		}
	}
	if got := r.Backlog(id); got != 3 {
		t.Fatalf("Backlog(%d) = %d, want 3", id, got)
	}
	// The frame must have landed on the home shard's manager, not anywhere
	// else.
	loc := r.byID[id]
	if got := r.shards[loc.shard].manager.Backlog(loc.slot); got != 3 {
		t.Fatalf("home shard slot backlog %d, want 3", got)
	}
	for k := range r.shards {
		if k == loc.shard {
			continue
		}
		if tot := r.shards[k].manager.Totals(); tot.Submitted != 0 {
			t.Fatalf("shard %d saw %d submissions for a foreign stream", k, tot.Submitted)
		}
	}
}

func TestMergeCounters(t *testing.T) {
	a := regblock.Counters{Wins: 1, Services: 2, Met: 3, Missed: 4, Drops: 5, Violations: 6}
	b := regblock.Counters{Wins: 10, Services: 20, Met: 30, Missed: 40, Drops: 50, Violations: 60}
	got := MergeCounters(a, b)
	want := regblock.Counters{Wins: 11, Services: 22, Met: 33, Missed: 44, Drops: 55, Violations: 66}
	if got != want {
		t.Fatalf("MergeCounters = %+v, want %+v", got, want)
	}
	if z := MergeCounters(); z != (regblock.Counters{}) {
		t.Fatalf("MergeCounters() = %+v, want zero", z)
	}
}

func TestRunErrors(t *testing.T) {
	r := mustRouter(t, Config{Shards: 2, SlotsPerShard: 2})
	if _, err := r.Run(10); err == nil {
		t.Fatalf("Run with no streams accepted")
	}
	r = mustRouter(t, Config{Shards: 2, SlotsPerShard: 2})
	if _, err := r.AdmitBalanced(2, edfSpec(2)); err != nil {
		t.Fatalf("AdmitBalanced: %v", err)
	}
	if _, err := r.Run(0); err == nil {
		t.Fatalf("Run(0) accepted")
	}
	if _, err := r.Run(16); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := r.Run(16); err == nil {
		t.Fatalf("second Run accepted")
	}
	if err := r.Admit(StreamID(12345), edfSpec(2)); err == nil {
		t.Fatalf("Admit after Run accepted")
	}
}

func TestRunFrameConservation(t *testing.T) {
	const perStream = 500
	r := mustRouter(t, Config{Shards: 4, SlotsPerShard: 4})
	ids, err := r.AdmitBalanced(8, edfSpec(4))
	if err != nil {
		t.Fatalf("AdmitBalanced: %v", err)
	}
	res, err := r.Run(perStream)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := uint64(len(ids) * perStream)
	if res.Frames != want {
		t.Fatalf("delivered %d frames, want %d", res.Frames, want)
	}
	var sum uint64
	var merged regblock.Counters
	for _, sr := range res.PerShard {
		sum += sr.Frames
		if sr.Frames != uint64(sr.Streams)*perStream {
			t.Fatalf("shard %d delivered %d frames for %d streams", sr.Shard, sr.Frames, sr.Streams)
		}
		var slotSum uint64
		for _, c := range sr.PerSlot {
			slotSum += c
		}
		if slotSum != sr.Frames {
			t.Fatalf("shard %d per-slot sum %d != frames %d", sr.Shard, slotSum, sr.Frames)
		}
		if sr.QM.Submitted != sr.Frames || sr.QM.Dequeued != sr.Frames {
			t.Fatalf("shard %d QM accounting %+v for %d frames", sr.Shard, sr.QM, sr.Frames)
		}
		merged = MergeCounters(merged, sr.Counters)
	}
	if sum != want {
		t.Fatalf("per-shard frames sum %d, want %d", sum, want)
	}
	if res.Counters != merged {
		t.Fatalf("aggregate counters %+v != merged %+v", res.Counters, merged)
	}
	if res.Counters.Services != want {
		t.Fatalf("aggregate Services %d, want %d", res.Counters.Services, want)
	}
	if len(res.Bandwidth) == 0 {
		t.Fatalf("no aggregate bandwidth series")
	}
}

func TestRunModeledTimeIsMaxOverShards(t *testing.T) {
	const perStream = 2000
	// One shard, one stream: the §5.2 ModeNone operating point must fall
	// out — 1e9/2130 ≈ 469483 packets/s.
	r := mustRouter(t, Config{Shards: 1, SlotsPerShard: 2})
	if err := r.Admit(0, edfSpec(2)); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	res, err := r.Run(perStream)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantPPS := 1e9 / DefaultHostNs
	if math.Abs(res.PacketsPerS-wantPPS) > 1 {
		t.Fatalf("1-shard ModeNone pps = %v, want ≈%v", res.PacketsPerS, wantPPS)
	}

	// Four evenly loaded shards: modeled completion is the per-shard max,
	// so aggregate modeled throughput is 4× the single-pipeline rate.
	r4 := mustRouter(t, Config{Shards: 4, SlotsPerShard: 2})
	if _, err := r4.AdmitBalanced(4, edfSpec(2)); err != nil {
		t.Fatalf("AdmitBalanced: %v", err)
	}
	res4, err := r4.Run(perStream)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var maxShard float64
	for _, sr := range res4.PerShard {
		if sr.VirtualNs > maxShard {
			maxShard = sr.VirtualNs
		}
	}
	if res4.VirtualNs != maxShard {
		t.Fatalf("Result.VirtualNs %v != max shard %v", res4.VirtualNs, maxShard)
	}
	if math.Abs(res4.PacketsPerS-4*wantPPS) > 4 {
		t.Fatalf("4-shard pps = %v, want ≈%v", res4.PacketsPerS, 4*wantPPS)
	}
	if res4.WallNs <= 0 || res4.WallPacketsPerS <= 0 {
		t.Fatalf("wall-clock throughput not reported: %+v", res4)
	}
}

func TestRunWithEmptyShards(t *testing.T) {
	// More shards than streams: unloaded shards must idle out cleanly and
	// contribute nothing to the aggregate.
	r := mustRouter(t, Config{Shards: 8, SlotsPerShard: 2})
	spec := edfSpec(2)
	if err := r.Admit(0, spec); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	res, err := r.Run(200)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Frames != 200 {
		t.Fatalf("delivered %d frames, want 200", res.Frames)
	}
	loaded := 0
	for _, sr := range res.PerShard {
		if sr.Streams > 0 {
			loaded++
			continue
		}
		if sr.Frames != 0 || sr.VirtualNs != 0 {
			t.Fatalf("empty shard %d reports work: %+v", sr.Shard, sr)
		}
	}
	if loaded != 1 {
		t.Fatalf("%d loaded shards, want 1", loaded)
	}
}

func TestRunPIOModeMetersTransfers(t *testing.T) {
	r := mustRouter(t, Config{Shards: 2, SlotsPerShard: 2, Mode: pci.ModePIO})
	if _, err := r.AdmitBalanced(2, edfSpec(2)); err != nil {
		t.Fatalf("AdmitBalanced: %v", err)
	}
	res, err := r.Run(640)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, sr := range res.PerShard {
		if sr.Streams == 0 {
			continue
		}
		if sr.TransferNs <= 0 {
			t.Fatalf("shard %d metered no PIO transfer time", sr.Shard)
		}
		if sr.VirtualNs <= float64(sr.Frames)*DefaultHostNs {
			t.Fatalf("shard %d virtual time excludes transfers", sr.Shard)
		}
	}
}
