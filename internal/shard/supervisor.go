package shard

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pci"
	"repro/internal/qm"
	"repro/internal/regblock"
	"repro/internal/streamlet"
)

// RecoveryConfig parameterizes the shard supervisor. Zero fields take
// defaults.
type RecoveryConfig struct {
	// MaxRestarts is how many times a crashed shard pipeline is restarted
	// before it is declared dead and its flows re-aggregated onto survivors
	// (default 2).
	MaxRestarts int
	// BackoffNs is the first restart's backoff in virtual ns (default
	// 6620, two SRAM bank switches); each further restart doubles it.
	BackoffNs float64
	// MaxBackoffNs caps the doubled backoff (default 8×BackoffNs).
	MaxBackoffNs float64
	// Policy is the Queue-Manager overload policy installed on every
	// shard (default qm.Backpressure, the lossless pre-policy behavior).
	Policy qm.Policy
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 2
	}
	if c.BackoffNs == 0 {
		c.BackoffNs = 6620
	}
	if c.MaxBackoffNs == 0 {
		c.MaxBackoffNs = 8 * c.BackoffNs
	}
	return c
}

// SupervisedResult reports a supervised chaos run.
type SupervisedResult struct {
	Shards  int
	Streams int
	// Target is the frame count the run had to account for
	// (streams × framesPerStream); conservation demands
	// Delivered + Dropped == Target.
	Target    uint64
	Delivered uint64
	// Dropped counts frames definitively lost with accounting under the
	// overload policy (shed or evicted); zero under Backpressure.
	Dropped uint64
	// Restarts is the total pipeline restarts across all shards.
	Restarts int
	// DeadShards lists shards declared dead after exhausting restarts.
	DeadShards []int
	// ReaggregatedSlots counts dead-shard stream-slots whose flows were
	// re-homed as streamlets onto survivors.
	ReaggregatedSlots int
	// RebindEpochs sums the survivors' scheduler rebind epochs.
	RebindEpochs uint64
	// Rounds is how many supervision rounds the run took (1 = no faults).
	Rounds int
	// VirtualNs is the modeled completion time: max over shards of host
	// cost, metered transfers, injected fault time and restart backoffs.
	VirtualNs   float64
	PacketsPerS float64
	Counters    regblock.Counters
	// PerShardDelivered is each shard's delivered-frame total (including
	// frames it adopted from dead siblings).
	PerShardDelivered []uint64
}

// crashInfo describes why a shard's pipeline segment stopped abnormally.
type crashInfo struct {
	injected bool   // true for a scheduled ShardCrash, false for a pipeline fault (PCI giveup)
	at       uint64 // the crash point's scheduled-frame index (injected crashes)
	err      error  // the underlying fault (pipeline faults)
}

// supShard is one shard's supervision state, persisted across rounds.
type supShard struct {
	s    *shardState
	plan *fault.ShardPlan
	fps  uint64 // framesPerStream

	subPerSlot []uint64 // frames disposed of (queued or shed) per own slot
	delivered  []uint64 // frames delivered per scheduler slot (own + adopted)
	deliveredT uint64
	scheduled  uint64
	sinceBatch uint64
	meterBatch func(int) error

	ownTarget     uint64
	adoptedTarget uint64
	restarts      int
	dead          bool
	backoffNs     float64
	orphans       [][]*streamlet.Backlog // adopted backlogs per scheduler slot
	crash         *crashInfo
}

// remaining is the work the shard still owes: its share of the target minus
// what it delivered and what the overload policy definitively dropped.
func (u *supShard) remaining() uint64 {
	lost := u.s.manager.LiveDropped()
	have := u.deliveredT + lost
	total := u.ownTarget + u.adoptedTarget
	if have >= total {
		return 0
	}
	return total - have
}

// liveLost returns slot's definitively-lost frames. Since the Queue
// Manager's drop/refused accounting split, Stats(slot).Dropped counts
// losses only under every policy — Backpressure refusals land in Refused —
// so no policy dispatch is needed.
func (u *supShard) liveLost(slot int) uint64 {
	return u.s.manager.Stats(slot).Dropped
}

// RunSupervised pushes framesPerStream frames through every admitted stream
// under a fault schedule, supervising the shard pipelines: a crashed
// pipeline (injected crash or PCI transfer giveup) is restarted with capped
// exponential backoff in virtual ns, and after MaxRestarts the shard is
// declared dead — its undelivered flows are salvaged and re-aggregated as
// streamlets onto the surviving shards' stream-slots, round-robin (§4.2:
// per-stream QoS degrades, service continues).
//
// The run proceeds in barrier-phased rounds: every live shard runs its
// pipeline segment concurrently until completion or crash, then the
// supervisor (single-threaded, in shard-index order) applies recovery and
// appends to trace — so the same seed yields a byte-identical trace.
// schedule may be nil (no faults, one round) and trace may be nil
// (discard). RunSupervised may be called once per Router, in place of Run.
func (r *Router) RunSupervised(framesPerStream int, schedule *fault.Schedule, rcfg RecoveryConfig, trace *fault.Trace) (*SupervisedResult, error) {
	if r.ran {
		return nil, fmt.Errorf("shard: Run called twice")
	}
	if framesPerStream < 1 {
		return nil, fmt.Errorf("shard: %d frames per stream", framesPerStream)
	}
	if len(r.byID) == 0 {
		return nil, fmt.Errorf("shard: no streams admitted")
	}
	r.ran = true
	rcfg = rcfg.withDefaults()

	sup := make([]*supShard, len(r.shards))
	for k, s := range r.shards {
		s.manager.SetPolicy(rcfg.Policy)
		s.bus.Injector = schedule.Shard(k).Bus()
		if err := s.sched.Start(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		sup[k] = &supShard{
			s:          s,
			plan:       schedule.Shard(k),
			fps:        uint64(framesPerStream),
			subPerSlot: make([]uint64, len(s.streams)),
			delivered:  make([]uint64, r.cfg.SlotsPerShard),
			meterBatch: s.bus.BatchMeter(r.cfg.Mode),
			ownTarget:  uint64(len(s.streams)) * uint64(framesPerStream),
			orphans:    make([][]*streamlet.Backlog, r.cfg.SlotsPerShard),
		}
	}

	// Round bound: every round but the last retires at least one crash, and
	// crashes come from the finite schedule (injected crashes plus at most
	// one PCI giveup per bus event).
	maxRounds := 3
	if schedule != nil {
		maxRounds += len(schedule.Events())
	}

	result := &SupervisedResult{
		Shards:  len(r.shards),
		Streams: len(r.byID),
		Target:  uint64(len(r.byID)) * uint64(framesPerStream),
	}
	rrCursor := 0

	for round := 0; ; round++ {
		var active []*supShard
		for _, u := range sup {
			if !u.dead && u.remaining() > 0 {
				active = append(active, u)
			}
		}
		if len(active) == 0 {
			result.Rounds = round
			break
		}
		if round >= maxRounds {
			return nil, fmt.Errorf("shard: recovery did not converge in %d rounds", maxRounds)
		}

		var wg sync.WaitGroup
		errs := make([]error, len(active))
		for i, u := range active {
			wg.Add(1)
			go func(i int, u *supShard) {
				defer wg.Done()
				errs[i] = r.runSegment(u)
			}(i, u)
		}
		wg.Wait()
		for i, u := range active {
			if errs[i] != nil {
				return nil, fmt.Errorf("shard %d: %w", u.s.index, errs[i])
			}
			// Drain the tx-ring residue a crash stranded, so delivered
			// equals scheduled at every barrier (conservation bookkeeping
			// is exact between rounds).
			for {
				tx, ok := u.s.txRing.Pop()
				if !ok {
					break
				}
				u.delivered[tx.Slot]++
				u.deliveredT++
				if u.s.delivered != nil {
					u.s.delivered.Inc()
				}
			}
		}

		// Recovery decisions: single-threaded, shard-index order.
		for _, u := range active {
			if u.crash == nil {
				continue
			}
			c := u.crash
			u.crash = nil
			if c.injected {
				trace.Addf("round=%d shard=%d crash injected at=%d", round, u.s.index, c.at)
			} else {
				trace.Addf("round=%d shard=%d crash pipeline: %v", round, u.s.index, c.err)
			}
			if u.restarts < rcfg.MaxRestarts {
				u.restarts++
				result.Restarts++
				backoff := rcfg.BackoffNs
				for i := 1; i < u.restarts; i++ {
					backoff *= 2
				}
				if backoff > rcfg.MaxBackoffNs {
					backoff = rcfg.MaxBackoffNs
				}
				u.backoffNs += backoff
				trace.Addf("round=%d shard=%d restart n=%d backoff=%gns", round, u.s.index, u.restarts, backoff)
				continue
			}
			u.dead = true
			result.DeadShards = append(result.DeadShards, u.s.index)
			trace.Addf("round=%d shard=%d dead after %d restarts", round, u.s.index, u.restarts)
			n, err := r.reaggregate(u, sup, &rrCursor, rcfg.Policy, round, trace)
			if err != nil {
				return nil, err
			}
			result.ReaggregatedSlots += n
		}
	}

	for _, u := range sup {
		result.Delivered += u.deliveredT
		result.Dropped += u.s.manager.LiveDropped()
		result.RebindEpochs += u.s.sched.RebindEpoch()
		result.Counters = MergeCounters(result.Counters, u.s.sched.Totals())
		result.PerShardDelivered = append(result.PerShardDelivered, u.deliveredT)
		vns := float64(u.deliveredT)*r.cfg.HostNs + u.s.bus.BusyNs + u.backoffNs
		if vns > result.VirtualNs {
			result.VirtualNs = vns
		}
	}
	if result.VirtualNs > 0 {
		result.PacketsPerS = float64(result.Delivered) / result.VirtualNs * 1e9
	}
	return result, nil
}

// segIdleLimit bounds consecutive scheduler batches without a scheduled
// frame before a segment declares the pipeline wedged — a safety valve, not
// a modeled timeout.
const segIdleLimit = 1 << 14

// runSegment runs one shard's pipeline until its remaining work is done or
// a fault crashes it (recorded in u.crash). A non-nil error is a
// non-recoverable harness failure.
func (r *Router) runSegment(u *supShard) error {
	cfg := r.cfg
	s := u.s
	n := len(s.streams)

	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)

	// Producer: resumes from the per-slot disposal counts of earlier
	// rounds. Saturation bursts key off the deterministic frame index
	// k·n+slot, not the timing-dependent attempt count.
	go func() {
		defer wg.Done()
		for k := uint64(0); k < u.fps; k++ {
			for slot := 0; slot < n; slot++ {
				if u.subPerSlot[slot] > k {
					continue
				}
				if burst := u.plan.BurstAt(k*uint64(n) + uint64(slot)); burst > 0 {
					s.manager.Saturate(burst)
				}
				f := qm.Frame{Size: cfg.FrameBytes, Arrival: k}
				for {
					if stopped() {
						return
					}
					switch s.manager.Offer(slot, f) {
					case qm.Queued, qm.Shed:
						u.subPerSlot[slot]++
					case qm.Busy:
						runtime.Gosched()
						continue
					default:
						u.subPerSlot[slot]++
					}
					break
				}
			}
		}
	}()

	// Transmission engine: drains scheduled IDs until the shard's remaining
	// work is gone or the segment stops; the supervisor drains any residue
	// at the barrier.
	go func() {
		defer wg.Done()
		for u.remaining() > 0 {
			tx, ok := s.txRing.Pop()
			if !ok {
				if stopped() {
					return
				}
				runtime.Gosched()
				continue
			}
			u.delivered[tx.Slot]++
			u.deliveredT++
			if s.delivered != nil {
				s.delivered.Inc()
			}
		}
	}()

	// Scheduler loop. Ends the segment by closing stop on every exit path.
	defer func() {
		cancel()
		wg.Wait()
	}()
	idleBatches := 0
	for u.crash == nil {
		// remaining() already subtracts deliveries the engine is making
		// concurrently; gate on scheduled work instead: schedule until the
		// total ever scheduled covers the target minus definite losses.
		lost := s.manager.LiveDropped()
		total := u.ownTarget + u.adoptedTarget
		if u.scheduled+lost >= total {
			break
		}
		progressed := false
		s.sched.RunCycles(schedulerBatchCycles, func(cr *core.CycleResult) bool {
			if cr.Idle {
				runtime.Gosched()
				return true
			}
			for _, tx := range cr.Transmissions {
				for !s.txRing.Push(tx) {
					runtime.Gosched() // engine backpressure
				}
				u.scheduled++
				progressed = true
				u.sinceBatch++
				if u.sinceBatch == uint64(cfg.TransferBatch) {
					u.sinceBatch = 0
					if err := u.meterBatch(cfg.TransferBatch); err != nil {
						u.crash = &crashInfo{err: err}
						return false
					}
				}
				if u.plan.CrashAt(u.scheduled) {
					at, _ := u.plan.ConsumeCrash()
					u.crash = &crashInfo{injected: true, at: at}
					return false
				}
			}
			lost := s.manager.LiveDropped()
			return u.scheduled+lost < u.ownTarget+u.adoptedTarget
		})
		if progressed {
			idleBatches = 0
		} else {
			idleBatches++
			if idleBatches > segIdleLimit {
				return fmt.Errorf("pipeline wedged: %d/%d scheduled after %d idle batches",
					u.scheduled, u.ownTarget+u.adoptedTarget, idleBatches)
			}
		}
	}
	return nil
}

// reaggregate salvages a dead shard's undelivered flows and re-homes them,
// one streamlet backlog per dead stream-slot, round-robin across the
// survivors' occupied stream-slots. Each target slot's head source is
// rebuilt as a streamlet aggregator over its own queue plus every backlog
// it has adopted, and swapped in with a counter-preserving scheduler rebind
// (bumping the target's rebind epoch). It returns how many dead slots were
// re-homed.
func (r *Router) reaggregate(dead *supShard, sup []*supShard, rrCursor *int, policy qm.Policy, round int, trace *fault.Trace) (int, error) {
	// The survivor slot pool, in (shard, slot) index order — the round-robin
	// the paper uses between streamlets, applied here to placement.
	type pair struct {
		u    *supShard
		slot int
	}
	var pool []pair
	for _, v := range sup {
		if v.dead {
			continue
		}
		for slot := range v.s.streams {
			pool = append(pool, pair{v, slot})
		}
	}
	if len(pool) == 0 {
		return 0, fmt.Errorf("shard %d dead with no surviving stream-slots to re-aggregate onto", dead.s.index)
	}

	n := len(dead.s.streams)
	// built counts salvaged heads; the gap to the shard's remaining work is
	// frames in flight inside the dead scheduler, synthesized below.
	heads := make([][]regblock.Head, n)
	var built uint64
	for slot := 0; slot < n; slot++ {
		dead.s.manager.Drain(slot, func(f qm.Frame) {
			heads[slot] = append(heads[slot], regblock.Head{Arrival: f.Arrival})
		})
		for k := dead.subPerSlot[slot]; k < dead.fps; k++ {
			heads[slot] = append(heads[slot], regblock.Head{Arrival: k})
			dead.subPerSlot[slot]++
		}
		for _, bl := range dead.orphans[slot] {
			for {
				h, ok := bl.NextHead()
				if !ok {
					break
				}
				heads[slot] = append(heads[slot], h)
			}
		}
		built += uint64(len(heads[slot]))
	}
	if gap := dead.remaining(); gap > built {
		for i := built; i < gap; i++ {
			heads[n-1] = append(heads[n-1], regblock.Head{Arrival: dead.fps})
		}
	}

	for slot := 0; slot < n; slot++ {
		t := pool[*rrCursor%len(pool)]
		*rrCursor++
		bl := streamlet.NewBacklog(heads[slot])
		t.u.orphans[t.slot] = append(t.u.orphans[t.slot], bl)
		t.u.adoptedTarget += uint64(len(heads[slot]))

		srcs := []regblock.HeadSource{t.u.s.manager.Source(t.slot)}
		for _, b := range t.u.orphans[t.slot] {
			srcs = append(srcs, b)
		}
		set, err := streamlet.NewSet(1, srcs)
		if err != nil {
			return 0, err
		}
		agg, err := streamlet.New(set)
		if err != nil {
			return 0, err
		}
		flushed, err := t.u.s.sched.Rebind(t.slot, agg)
		if err != nil {
			return 0, err
		}
		if flushed {
			// The target slot held an in-flight head of its own; the rebind
			// flushed it, so a replacement rides in on the adopted backlog.
			bl.Push(regblock.Head{Arrival: dead.fps})
		}
		trace.Addf("round=%d shard=%d slot=%d reaggregate -> shard=%d slot=%d epoch=%d",
			round, dead.s.index, slot, t.u.s.index, t.slot, t.u.s.sched.RebindEpoch())
	}
	_ = policy
	return n, nil
}

// Bus returns shard k's PCI bus (nil when k is out of range) — the seam
// chaos drivers use to install injectors and read fault counters.
func (r *Router) Bus(k int) *pci.Bus {
	if k < 0 || k >= len(r.shards) {
		return nil
	}
	return r.shards[k].bus
}

// Manager returns shard k's Queue Manager (nil when k is out of range).
func (r *Router) Manager(k int) *qm.Manager {
	if k < 0 || k >= len(r.shards) {
		return nil
	}
	return r.shards[k].manager
}
