package shard

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/pci"
	"repro/internal/qm"
)

// barrierInjector synchronizes two shards' buses so both reach their fault
// point before either is allowed to fail — making "two concurrently failing
// shards" deterministic instead of a race with sibling cancellation.
type barrierInjector struct {
	wg *sync.WaitGroup
}

func (b *barrierInjector) OnTransfer(op uint64) pci.Fault {
	if op != 0 {
		return pci.Fault{}
	}
	b.wg.Done()
	b.wg.Wait()
	return pci.Fault{Fails: 100} // far past any retry budget
}

func TestRunJoinsAllShardErrors(t *testing.T) {
	r := mustRouter(t, Config{Shards: 2, SlotsPerShard: 4, Mode: pci.ModePIO, TransferBatch: 1})
	if _, err := r.AdmitBalanced(4, edfSpec(4)); err != nil {
		t.Fatal(err)
	}
	var barrier sync.WaitGroup
	barrier.Add(2)
	for k := 0; k < 2; k++ {
		r.Bus(k).Injector = &barrierInjector{wg: &barrier}
	}
	_, err := r.Run(64)
	if err == nil {
		t.Fatal("both shards failed; Run must error")
	}
	for _, want := range []string{"shard 0", "shard 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if strings.Contains(err.Error(), "canceled") {
		t.Errorf("sibling cancellations must be dropped when root causes exist: %v", err)
	}
	var count int
	for _, line := range strings.Split(err.Error(), "\n") {
		if strings.Contains(line, "retry budget") {
			count++
		}
	}
	if count != 2 {
		t.Errorf("want both root-cause failures in the join, got %d:\n%v", count, err)
	}
}

func supervisedRouter(t *testing.T, shards, slots, streams int) *Router {
	t.Helper()
	r := mustRouter(t, Config{Shards: shards, SlotsPerShard: slots})
	if _, err := r.AdmitBalanced(streams, edfSpec(slots)); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSupervisedNoFaultsMatchesPlainRun(t *testing.T) {
	const frames = 200
	plain := supervisedRouter(t, 2, 4, 8)
	res, err := plain.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	supd := supervisedRouter(t, 2, 4, 8)
	var tr fault.Trace
	sres, err := supd.RunSupervised(frames, nil, RecoveryConfig{}, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Delivered != res.Frames || sres.Delivered != sres.Target {
		t.Fatalf("supervised delivered %d, plain %d, target %d", sres.Delivered, res.Frames, sres.Target)
	}
	if sres.Rounds != 1 || sres.Restarts != 0 || len(sres.DeadShards) != 0 || sres.Dropped != 0 {
		t.Fatalf("fault-free run took recovery actions: %+v", sres)
	}
	if tr.Len() != 0 {
		t.Fatalf("fault-free run wrote a trace:\n%s", tr.String())
	}
	if sres.Counters.Services != res.Counters.Services {
		t.Fatalf("supervised services %d, plain %d", sres.Counters.Services, res.Counters.Services)
	}
}

func TestSupervisedRestartsRecoverCrash(t *testing.T) {
	sched, err := fault.NewSchedule(fault.Profile{Seed: 11, Shards: 2, ShardCrashes: 1, Horizon: 300})
	if err != nil {
		t.Fatal(err)
	}
	r := supervisedRouter(t, 2, 4, 8)
	var tr fault.Trace
	res, err := r.RunSupervised(100, sched, RecoveryConfig{}, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 || len(res.DeadShards) != 0 {
		t.Fatalf("one injected crash must cost one restart, no deaths: %+v\n%s", res, tr.String())
	}
	if res.Delivered != res.Target || res.Dropped != 0 {
		t.Fatalf("conservation: delivered %d + dropped %d != target %d", res.Delivered, res.Dropped, res.Target)
	}
	if !strings.Contains(tr.String(), "crash injected") || !strings.Contains(tr.String(), "restart n=1") {
		t.Fatalf("trace missing recovery record:\n%s", tr.String())
	}
	if res.Rounds != 2 {
		t.Fatalf("crash+restart takes 2 rounds, got %d", res.Rounds)
	}
}

func TestSupervisedDeadShardReaggregates(t *testing.T) {
	// Seed 3 splits the 4 crash points 3/1 across the 2 shards: with
	// MaxRestarts 1 the 3-crash shard dies on its second crash and its
	// flows re-home onto the survivor, which itself restarts once.
	sched2, err := fault.NewSchedule(fault.Profile{Seed: 3, Shards: 2, ShardCrashes: 4, Horizon: 200})
	if err != nil {
		t.Fatal(err)
	}
	r := supervisedRouter(t, 2, 4, 8)
	var tr fault.Trace
	res, err := r.RunSupervised(100, sched2, RecoveryConfig{MaxRestarts: 1}, &tr)
	if err != nil {
		t.Fatalf("%v\n%s", err, tr.String())
	}
	if len(res.DeadShards) == 0 {
		t.Fatalf("8 crash points across 2 shards with MaxRestarts 1 must kill a shard:\n%s", tr.String())
	}
	if res.ReaggregatedSlots == 0 || res.RebindEpochs == 0 {
		t.Fatalf("dead shard must re-aggregate with rebind epochs: %+v", res)
	}
	if res.Delivered+res.Dropped != res.Target {
		t.Fatalf("conservation: delivered %d + dropped %d != target %d\n%s",
			res.Delivered, res.Dropped, res.Target, tr.String())
	}
	if !strings.Contains(tr.String(), "reaggregate -> shard=") {
		t.Fatalf("trace missing re-aggregation records:\n%s", tr.String())
	}
}

func TestSupervisedPCIFaultsRetryOrCrash(t *testing.T) {
	// Heavy stall pressure within the retry budget: the bus recovers via
	// backoff; giveups crash the pipeline and the supervisor restarts it.
	sched, err := fault.NewSchedule(fault.Profile{
		Seed: 21, Shards: 2, PCIFails: 4, BankTimeouts: 2, Horizon: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := supervisedRouter(t, 2, 4, 8)
	r.cfg.Mode = pci.ModePIO
	var tr fault.Trace
	res, err := r.RunSupervised(200, sched, RecoveryConfig{}, &tr)
	if err != nil {
		t.Fatalf("%v\n%s", err, tr.String())
	}
	if res.Delivered+res.Dropped != res.Target {
		t.Fatalf("conservation: %+v", res)
	}
	var retries uint64
	for k := 0; k < 2; k++ {
		retries += r.Bus(k).Retries
	}
	if retries == 0 {
		t.Fatal("injected PCI failures must exercise the retry path")
	}
}

func TestSupervisedSaturationUnderRejectNew(t *testing.T) {
	sched, err := fault.NewSchedule(fault.Profile{
		Seed: 31, Shards: 2, QMSaturations: 3, SaturationBurst: 4, Horizon: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := supervisedRouter(t, 2, 4, 8)
	var tr fault.Trace
	res, err := r.RunSupervised(100, sched, RecoveryConfig{Policy: qm.RejectNew}, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("forced saturation under RejectNew must shed with accounting")
	}
	if res.Delivered+res.Dropped != res.Target {
		t.Fatalf("conservation: delivered %d + dropped %d != target %d", res.Delivered, res.Dropped, res.Target)
	}
}

func TestSupervisedValidation(t *testing.T) {
	r := supervisedRouter(t, 2, 4, 4)
	if _, err := r.RunSupervised(0, nil, RecoveryConfig{}, nil); err == nil {
		t.Fatal("0 frames accepted")
	}
	if _, err := r.RunSupervised(10, nil, RecoveryConfig{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunSupervised(10, nil, RecoveryConfig{}, nil); err == nil {
		t.Fatal("second run accepted")
	}
	empty := mustRouter(t, Config{Shards: 2, SlotsPerShard: 4})
	if _, err := empty.RunSupervised(10, nil, RecoveryConfig{}, nil); err == nil {
		t.Fatal("no-stream run accepted")
	}
	if empty.Bus(-1) != nil || empty.Bus(5) != nil || empty.Manager(-1) != nil || empty.Manager(5) != nil {
		t.Fatal("out-of-range accessors must return nil")
	}
	if empty.Bus(0) == nil || empty.Manager(0) == nil {
		t.Fatal("in-range accessors must not return nil")
	}
}

func TestSupervisedAllShardsDead(t *testing.T) {
	// Every shard saturated with crashes and no restart budget: recovery
	// must fail with a clear error, not hang.
	sched, err := fault.NewSchedule(fault.Profile{Seed: 2, Shards: 1, ShardCrashes: 6, Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	r := mustRouter(t, Config{Shards: 1, SlotsPerShard: 4})
	if _, err := r.AdmitBalanced(4, edfSpec(4)); err != nil {
		t.Fatal(err)
	}
	var tr fault.Trace
	_, err = r.RunSupervised(100, sched, RecoveryConfig{MaxRestarts: 1}, &tr)
	if err == nil {
		t.Fatalf("sole shard died; run must fail:\n%s", tr.String())
	}
	if !strings.Contains(err.Error(), "no surviving") {
		t.Fatalf("unexpected failure: %v", err)
	}
}

func TestSupervisedErrorIsNotCanceled(t *testing.T) {
	if errors.Is(errCanceled, errors.New("x")) {
		t.Fatal("sanity")
	}
}
