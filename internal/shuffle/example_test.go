package shuffle_test

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/shuffle"
)

// Example orders four stream-slots' attribute words through the
// recirculating shuffle-exchange network in the paper's log₂N passes.
func Example() {
	nw, _ := shuffle.New(4, decision.DWCS, shuffle.PaperLogN)
	in := []attr.Attributes{
		{Deadline: 9, Slot: 0, Valid: true},
		{Deadline: 3, Slot: 1, Valid: true},
		{Deadline: 7, Slot: 2, Valid: true},
		{Deadline: 5, Slot: 3, Valid: true},
	}
	res := nw.Run(in)
	fmt.Println("passes:", res.Passes)
	fmt.Println("winner:", res.Winner.Slot)
	for r, a := range res.Block {
		fmt.Printf("rank %d: slot %d (deadline %d)\n", r, a.Slot, a.Deadline)
	}
	// Note the interior: the paper's log₂N schedule guarantees the block's
	// head (winner) and tail (min-first circulation target), but ranks 1–2
	// may come out unsorted — the exact-sort extension (shuffle.Bitonic)
	// trades extra passes for a fully sorted block.
	// Output:
	// passes: 2
	// winner: 1
	// rank 0: slot 1 (deadline 3)
	// rank 1: slot 2 (deadline 7)
	// rank 2: slot 3 (deadline 5)
	// rank 3: slot 0 (deadline 9)
}

// Example_exactSort runs the same inputs through the bitonic extension.
func Example_exactSort() {
	nw, _ := shuffle.New(4, decision.DWCS, shuffle.Bitonic)
	in := []attr.Attributes{
		{Deadline: 9, Slot: 0, Valid: true},
		{Deadline: 3, Slot: 1, Valid: true},
		{Deadline: 7, Slot: 2, Valid: true},
		{Deadline: 5, Slot: 3, Valid: true},
	}
	res := nw.Run(in)
	fmt.Println("passes:", res.Passes)
	for r, a := range res.Block {
		fmt.Printf("rank %d: deadline %d\n", r, a.Deadline)
	}
	// Output:
	// passes: 3
	// rank 0: deadline 3
	// rank 1: deadline 5
	// rank 2: deadline 7
	// rank 3: deadline 9
}

// Example_winnerOnly shows the WR (max-finding) configuration: only the
// winner is routed, no block.
func Example_winnerOnly() {
	nw, _ := shuffle.New(4, decision.DWCS, shuffle.Tournament)
	in := []attr.Attributes{
		{Deadline: 9, Slot: 0, Valid: true},
		{Deadline: 3, Slot: 1, Valid: true},
		{Deadline: 7, Slot: 2, Valid: true},
		{Deadline: 5, Slot: 3, Valid: true},
	}
	res := nw.Run(in)
	fmt.Println("winner:", res.Winner.Slot, "block:", res.Block == nil)
	// Output: winner: 1 block: true
}
