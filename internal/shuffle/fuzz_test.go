package shuffle

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
)

// FuzzWinnerCorrect feeds arbitrary 8-slot attribute sets through every
// network schedule and checks the winner against the reference minimum —
// the property the whole architecture rests on.
func FuzzWinnerCorrect(f *testing.F) {
	f.Add(uint64(0x0102030405060708), uint64(0x1111222233334444), uint8(0xFF))
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(uint64(0xFFFFFFFFFFFFFFFF), uint64(0x8000800080008000), uint8(0x55))
	f.Fuzz(func(t *testing.T, deadlines, arrivals uint64, validMask uint8) {
		const n = 8
		in := make([]attr.Attributes, n)
		anyValid := false
		for i := 0; i < n; i++ {
			// Constrain times to a quarter wrap window so the order is
			// total (the hardware's operating assumption).
			d := attr.Time16((deadlines >> (8 * i)) & 0xFF)
			a := attr.Time16((arrivals >> (8 * i)) & 0xFF)
			valid := validMask>>i&1 == 1
			anyValid = anyValid || valid
			in[i] = attr.Attributes{Deadline: d, Arrival: a, Slot: attr.SlotID(i), Valid: valid}
		}
		want := in[0]
		for _, x := range in[1:] {
			if decision.Less(decision.DWCS, x, want) {
				want = x
			}
		}
		for _, schedule := range []Schedule{PaperLogN, Bitonic, Tournament} {
			nw, err := New(n, decision.DWCS, schedule)
			if err != nil {
				t.Fatal(err)
			}
			got := nw.Run(in).Winner
			if got.Slot != want.Slot {
				t.Fatalf("%v: winner slot %d, want %d (in=%v)", schedule, got.Slot, want.Slot, in)
			}
			if anyValid && !got.Valid {
				t.Fatalf("%v: invalid winner despite backlogged slots", schedule)
			}
		}
	})
}
