package shuffle

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
)

func TestQuickDifferential(t *testing.T) {
	for _, mode := range []decision.Mode{decision.DWCS, decision.TagOnly} {
		for _, sch := range []Schedule{PaperLogN, Bitonic, Tournament} {
			for _, n := range []int{2, 4, 8, 16, 64, 256} {
				rng := rand.New(rand.NewSource(int64(n)*7 + int64(sch)*3 + int64(mode)))
				nw, _ := New(n, mode, sch)
				ref, _ := New(n, mode, sch)
				ref.oracle = true
				in := make([]attr.Attributes, n)
				keys := make([]attr.Key, n)
				for trial := 0; trial < 200; trial++ {
					refT := attr.Time16(rng.Uint32())
					for i := range in {
						in[i] = attr.Attributes{
							Deadline: attr.Time16(rng.Uint32() & 0xFFFF),
							Arrival:  attr.Time16(rng.Uint32() & 0xFFFF),
							LossNum:  uint8(rng.Intn(4)),
							LossDen:  uint8(1 + rng.Intn(4)),
							Slot:     attr.SlotID(i),
							Valid:    rng.Intn(4) != 0,
						}
						if rng.Intn(3) == 0 {
							in[i].Deadline = in[0].Deadline
							in[i].Arrival = in[0].Arrival
							in[i].LossNum, in[i].LossDen = in[0].LossNum, in[0].LossDen
						}
						keys[i] = in[i].Key(refT)
					}
					a := nw.RunKeyed(in, keys)
					b := ref.RunKeyed(in, keys)
					if a.Winner != b.Winner {
						t.Fatalf("mode=%v sch=%v n=%d trial=%d winner %+v != %+v", mode, sch, n, trial, a.Winner, b.Winner)
					}
					if (a.Block == nil) != (b.Block == nil) {
						t.Fatalf("block nil mismatch")
					}
					for i := range a.Block {
						if a.Block[i] != b.Block[i] {
							t.Fatalf("mode=%v sch=%v n=%d trial=%d block[%d] %+v != %+v", mode, sch, n, trial, i, a.Block[i], b.Block[i])
						}
					}
					if a.Passes != b.Passes {
						t.Fatalf("passes %d != %d", a.Passes, b.Passes)
					}
				}
				ab, bb := nw.DecisionBlocks(), ref.DecisionBlocks()
				for i := range ab {
					if ab[i] != bb[i] {
						t.Fatalf("mode=%v sch=%v n=%d block %d counters %+v != %+v", mode, sch, n, i, ab[i], bb[i])
					}
				}
			}
		}
	}
}
