// Package shuffle implements the ShareStreams single-stage recirculating
// shuffle-exchange network: N/2 Decision blocks behind steering muxes,
// through which the N stream-slot attribute words recirculate to be ordered
// (Figure 4 of the paper).
//
// The recirculating arrangement is the paper's key area trade-off (§3, §4.3):
// a Decision-block *tree* needs N-1 blocks and cannot be pipelined under
// window-constrained disciplines (the winner must circulate back before the
// next decision), so ShareStreams keeps only the lowermost tree level — N/2
// blocks — and recirculates log₂N times per decision cycle.
//
// Three pass schedules are modeled:
//
//   - PaperLogN — the paper's schedule: log₂N shuffle-exchange passes,
//     routing winners and losers (the BA configuration). Provably places the
//     highest-priority stream at the front and the lowest-priority stream at
//     the back of the block (see package tests); the interior of the block is
//     ordered well but not guaranteed fully sorted for adversarial inputs.
//   - Bitonic — an exact-sort extension: a Batcher bitonic schedule executed
//     on the same N/2 blocks by the steering muxes, log₂N·(log₂N+1)/2
//     passes. Used by the ablation benches to price exact blocks.
//   - Tournament — the WR (winner-only routing) configuration: only winners
//     are routed onward, halving the live candidates each pass; after log₂N
//     passes a single winner remains. This eases physical interconnect at
//     the cost of the block.
package shuffle

import (
	"fmt"
	"math/bits"

	"repro/internal/attr"
	"repro/internal/decision"
)

// Schedule selects the steering-mux program for a decision cycle.
type Schedule uint8

const (
	// PaperLogN routes winners and losers through log₂N shuffle-exchange
	// passes, yielding the paper's "block" (BA configuration).
	PaperLogN Schedule = iota
	// Bitonic fully sorts in log₂N·(log₂N+1)/2 passes (exact-block
	// extension).
	Bitonic
	// Tournament routes winners only (WR / max-finding configuration).
	Tournament
)

// String returns the schedule name.
func (s Schedule) String() string {
	switch s {
	case PaperLogN:
		return "paper-logn"
	case Bitonic:
		return "bitonic"
	case Tournament:
		return "tournament"
	default:
		return fmt.Sprintf("schedule(%d)", uint8(s))
	}
}

// Result is the outcome of one decision cycle through the network.
type Result struct {
	// Winner is the highest-priority attribute word.
	Winner attr.Attributes
	// Block is the ordered list of all N words, front = highest priority
	// (BA schedules only; nil under Tournament, which routes winners only).
	Block []attr.Attributes
	// Passes is the number of network passes the cycle consumed — each
	// pass is one hardware clock cycle in the SCHEDULE state.
	Passes int
}

// Network is one recirculating shuffle-exchange network instance.
type Network struct {
	n        int
	schedule Schedule
	blocks   []decision.Block // the N/2 physical Decision blocks

	// scratch buffers reused across cycles to keep the hot path
	// allocation-free (the decision loop runs hundreds of thousands of
	// times in the Table 3 and throughput experiments).
	cur, nxt []attr.Attributes

	// Cycles counts decision cycles run; TotalPasses the cumulative
	// SCHEDULE-state clock cycles.
	Cycles      uint64
	TotalPasses uint64
}

// New builds a network for n stream-slots (n must be a power of two, ≥ 2)
// with Decision blocks in the given mode.
func New(n int, mode decision.Mode, schedule Schedule) (*Network, error) {
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("shuffle: slot count %d is not a power of two ≥ 2", n)
	}
	if schedule > Tournament {
		return nil, fmt.Errorf("shuffle: unknown schedule %d", schedule)
	}
	nw := &Network{
		n:        n,
		schedule: schedule,
		blocks:   make([]decision.Block, n/2),
		cur:      make([]attr.Attributes, n),
		nxt:      make([]attr.Attributes, n),
	}
	for i := range nw.blocks {
		nw.blocks[i].Mode = mode
	}
	return nw, nil
}

// Slots returns the network's slot count N.
func (nw *Network) Slots() int { return nw.n }

// Schedule returns the configured pass schedule.
func (nw *Network) Schedule() Schedule { return nw.schedule }

// DecisionBlocks exposes the N/2 physical Decision blocks (for rule-hit and
// comparison counters).
func (nw *Network) DecisionBlocks() []decision.Block { return nw.blocks }

// Compares returns the cumulative comparison count across all blocks.
func (nw *Network) Compares() uint64 {
	var total uint64
	for i := range nw.blocks {
		total += nw.blocks[i].Compares
	}
	return total
}

// PassesPerCycle returns the number of network passes (SCHEDULE-state clock
// cycles) one decision cycle takes under the configured schedule.
func (nw *Network) PassesPerCycle() int {
	k := bits.TrailingZeros(uint(nw.n)) // log2 n
	switch nw.schedule {
	case Bitonic:
		return k * (k + 1) / 2
	default:
		return k
	}
}

// Run performs one decision cycle over the N attribute words in slot order.
// It panics if len(in) != N (a wiring error, not a runtime condition).
func (nw *Network) Run(in []attr.Attributes) Result {
	if len(in) != nw.n {
		panic(fmt.Sprintf("shuffle: %d inputs wired to a %d-slot network", len(in), nw.n))
	}
	nw.Cycles++
	var r Result
	switch nw.schedule {
	case Tournament:
		r = nw.runTournament(in)
	case Bitonic:
		r = nw.runBitonic(in)
	default:
		r = nw.runPaperLogN(in)
	}
	nw.TotalPasses += uint64(r.Passes)
	return r
}

// runPaperLogN executes log₂N shuffle-exchange passes routing winners and
// losers: each pass applies the perfect shuffle, then each Decision block
// compare-exchanges its pair (winner to the even output).
func (nw *Network) runPaperLogN(in []attr.Attributes) Result {
	cur, nxt := nw.cur, nw.nxt
	copy(cur, in)
	k := bits.TrailingZeros(uint(nw.n))
	for p := 0; p < k; p++ {
		perfectShuffle(nxt, cur)
		for b := 0; b < nw.n/2; b++ {
			v := nw.blocks[b].Compare(nxt[2*b], nxt[2*b+1])
			cur[2*b], cur[2*b+1] = v.Winner, v.Loser
		}
	}
	block := make([]attr.Attributes, nw.n)
	copy(block, cur)
	return Result{Winner: block[0], Block: block, Passes: k}
}

// runBitonic executes a Batcher bitonic sorting schedule on the N/2 blocks:
// for each (k, j) stage the steering muxes pair element i with i^j and the
// block compare-exchanges in the direction given by bit k of i. Every stage
// engages exactly N/2 blocks, one pass each.
func (nw *Network) runBitonic(in []attr.Attributes) Result {
	cur := nw.cur
	copy(cur, in)
	passes := 0
	for k := 2; k <= nw.n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			b := 0
			for i := 0; i < nw.n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				ascending := i&k == 0
				v := nw.blocks[b].Compare(cur[i], cur[l])
				b++
				if ascending {
					cur[i], cur[l] = v.Winner, v.Loser
				} else {
					cur[i], cur[l] = v.Loser, v.Winner
				}
			}
			passes++
		}
	}
	block := make([]attr.Attributes, nw.n)
	copy(block, cur)
	return Result{Winner: block[0], Block: block, Passes: passes}
}

// runTournament executes the WR max-finding schedule: each pass compares the
// surviving candidates pairwise and routes only winners onward.
func (nw *Network) runTournament(in []attr.Attributes) Result {
	cur := nw.cur
	copy(cur, in)
	passes := 0
	for m := nw.n; m > 1; m /= 2 {
		for b := 0; b < m/2; b++ {
			v := nw.blocks[b].Compare(cur[2*b], cur[2*b+1])
			cur[b] = v.Winner
		}
		passes++
	}
	return Result{Winner: cur[0], Passes: passes}
}

// perfectShuffle writes the perfect shuffle of src into dst:
// dst[2i] = src[i], dst[2i+1] = src[i + N/2]. This is the fixed wiring
// between recirculation register outputs and Decision-block inputs.
func perfectShuffle(dst, src []attr.Attributes) {
	n := len(src)
	for i := 0; i < n/2; i++ {
		dst[2*i] = src[i]
		dst[2*i+1] = src[i+n/2]
	}
}
