// Package shuffle implements the ShareStreams single-stage recirculating
// shuffle-exchange network: N/2 Decision blocks behind steering muxes,
// through which the N stream-slot attribute words recirculate to be ordered
// (Figure 4 of the paper).
//
// The recirculating arrangement is the paper's key area trade-off (§3, §4.3):
// a Decision-block *tree* needs N-1 blocks and cannot be pipelined under
// window-constrained disciplines (the winner must circulate back before the
// next decision), so ShareStreams keeps only the lowermost tree level — N/2
// blocks — and recirculates log₂N times per decision cycle.
//
// Three pass schedules are modeled:
//
//   - PaperLogN — the paper's schedule: log₂N shuffle-exchange passes,
//     routing winners and losers (the BA configuration). Provably places the
//     highest-priority stream at the front and the lowest-priority stream at
//     the back of the block (see package tests); the interior of the block is
//     ordered well but not guaranteed fully sorted for adversarial inputs.
//   - Bitonic — an exact-sort extension: a Batcher bitonic schedule executed
//     on the same N/2 blocks by the steering muxes, log₂N·(log₂N+1)/2
//     passes. Used by the ablation benches to price exact blocks.
//   - Tournament — the WR (winner-only routing) configuration: only winners
//     are routed onward, halving the live candidates each pass; after log₂N
//     passes a single winner remains. This eases physical interconnect at
//     the cost of the block.
//
// # Key plane (structure-of-arrays register files)
//
// The pass loops run on a structure-of-arrays key plane rather than on the
// attribute words themselves: SetInput latches each slot's packed rank key
// (pre-masked for the network's decision mode) into a contiguous key file
// and its identity — true slot ID and latch position — into a parallel
// 32-bit aux file. A pass's compare-exchange is then pure arithmetic min/max
// over (key, slot): decision.KeyTie proves that masked-key equality implies
// the slot order decides, so the fast path has no data-dependent branches.
// The rare pairs the raw keys order wrongly — wrapped time fields straddling
// the serial-number window, exactly the pairs decision.FastOrder declines —
// are resolved inline by the serial-flip lemma: the deciding field of a
// straddling pair is a wrapped time whose higher key fields all tie, so the
// Table-2 cascade reaches exactly that field's serial compare (RuleEDF for
// the deadline field, RuleFCFS for arrival), and since the raw key order IS
// the deciding field's raw order, the cascade's verdict is the *flip* of the
// raw compare whenever raw and serial disagree. The pass loops therefore
// compute the disagreement bit branch-free, xor it into the exchange
// direction, and charge the exact RuleHits the cascade would have — no
// per-pair cascade calls anywhere on the hot path (see the counter notes on
// runPaperLogNSoA; the differential and fuzz suites pin the equivalence).
//
// SetInput also rebases each valid key's wrapped time fields against the
// current safety-window origins (field − (center − 0x4000), a serial-order-
// preserving bijection) and flags keys whose rebased fields leave [0,
// 0x8000). While no flagged key is latched — the steady state, since the
// scheduler re-centers the windows on the service frontier — every raw key
// compare equals the wrap-aware serial compare by construction, and the pass
// loops skip the straddle guards entirely. See keyUnsafe.
package shuffle

import (
	"fmt"
	"math/bits"

	"repro/internal/attr"
	"repro/internal/decision"
)

// Schedule selects the steering-mux program for a decision cycle.
type Schedule uint8

const (
	// PaperLogN routes winners and losers through log₂N shuffle-exchange
	// passes, yielding the paper's "block" (BA configuration).
	PaperLogN Schedule = iota
	// Bitonic fully sorts in log₂N·(log₂N+1)/2 passes (exact-block
	// extension).
	Bitonic
	// Tournament routes winners only (WR / max-finding configuration).
	Tournament
)

// String returns the schedule name.
func (s Schedule) String() string {
	switch s {
	case PaperLogN:
		return "paper-logn"
	case Bitonic:
		return "bitonic"
	case Tournament:
		return "tournament"
	default:
		return fmt.Sprintf("schedule(%d)", uint8(s))
	}
}

// Result is the outcome of one decision cycle through the network.
type Result struct {
	// Winner is the highest-priority attribute word.
	Winner attr.Attributes
	// Block is the ordered list of all N words, front = highest priority
	// (BA schedules only; nil under Tournament, which routes winners only).
	//
	// Block aliases a buffer owned by the Network that the next Run /
	// RunKeyed call overwrites — the recirculation registers themselves,
	// not a fresh copy. Contents are stable until that next call; callers
	// that retain the block across cycles must copy it first. This is the
	// same contract core.CycleResult.Transmissions uses, and it is what
	// keeps the decision hot path allocation-free.
	Block []attr.Attributes
	// Passes is the number of network passes the cycle consumed — each
	// pass is one hardware clock cycle in the SCHEDULE state.
	Passes int
}

// Light is the reduced outcome of RunLoadedLight: the decision a bulk driver
// needs — who won, whether anyone did, and how long the block's valid prefix
// is — without materializing the ordered attribute-word block. Member slots
// are read positionally via BlockSlotAt.
type Light struct {
	// WinnerSlot is the slot at the front of the order (the highest-priority
	// stream); meaningful only when Idle is false.
	WinnerSlot attr.SlotID
	// Idle reports that no latched slot was backlogged.
	Idle bool
	// Valid is the ordered block's valid-prefix length — the transaction
	// size in the BA configuration. Always 0 under Tournament, which routes
	// winners only and produces no block.
	Valid int
	// Passes is the number of network passes the cycle consumed.
	Passes int
}

// Network is one recirculating shuffle-exchange network instance.
type Network struct {
	n        int
	schedule Schedule
	mode     decision.Mode
	keyMask  attr.Key         // decision.KeyMask(mode), applied at latch
	blocks   []decision.Block // the N/2 physical Decision blocks

	// Latch registers — the words the Register Base blocks drive onto the
	// bus, written only by SetInput. words holds the attribute words;
	// latchKeys the packed rank keys pre-masked for the decision mode and
	// rebased against the safety-window origins (see keyUnsafe); auxInit
	// the identity words (true slot ID in the high half, latch position in
	// the low half) the pass loops permute. The schedules never write
	// these: recirculation permutes the key/aux register files below, so an
	// unchanged slot's register needs no relatching between cycles.
	words     []attr.Attributes
	latchKeys []attr.Key
	auxInit   []uint32

	// unsafeKey flags latched keys whose rebased time fields fall outside
	// the serial safety windows; nUnsafe counts them. While zero — the
	// steady state — every raw key compare equals the wrap-aware serial
	// compare and the pass loops run guard-free. Both windows float:
	// backlogged heads' deadline and arrival fields drift arbitrarily far
	// behind the clock (and a fully served block's chained deadlines run
	// ahead of it) but cluster near the service frontier, so the driver
	// re-centers both windows on the last transmitted head
	// (SetFieldCenters) to keep the cluster in range. See keyUnsafe.
	unsafeKey []uint8
	nUnsafe   int
	nUnsafeA  int
	dCenter   uint16
	aCenter   uint16

	// pendingCredits counts decision cycles whose bulk per-block Compares
	// credit (engaged[b] per cycle) has not been flushed into the blocks
	// yet: the hot path bumps one counter per cycle and the flush walks the
	// block file only when the counters are actually read.
	pendingCredits uint64

	// Permuted register files (the recirculation registers). keys/aux and
	// keysTmp/auxTmp ping-pong across shuffle passes; finKeys/finAux point
	// at whichever pair holds the final block order after a run.
	keys, keysTmp []attr.Key
	aux, auxTmp   []uint32
	finKeys       []attr.Key
	finAux        []uint32

	// engaged[b] is how many passes of one decision cycle engage Decision
	// block b under the configured schedule — the per-cycle Compares each
	// block accrues, bulk-credited per run (straddles resolve inline by
	// the serial-flip lemma and charge only their RuleHits).
	engaged []uint64

	// Contiguous per-block tie/rule accumulators the pass loops bump in
	// place of the scattered decision.Block counter fields (~80-byte
	// stride): a dense uint64 lane per counter keeps the hot loop's
	// accounting stores inside a few cache lines. flushCredits folds them
	// into the block file whenever the counters are read.
	accTie  []uint64
	accEDF  []uint64
	accFCFS []uint64

	block []attr.Attributes

	// Reference (oracle) machinery: the pre-key-plane index-permutation
	// implementation, kept verbatim as the differential-test oracle. The
	// oracle flag routes run() through it; compareAt is its per-pair body.
	oracle      bool
	idx, idxTmp []uint16
	ident       []uint16

	// Cycles counts decision cycles run; TotalPasses the cumulative
	// SCHEDULE-state clock cycles.
	Cycles      uint64
	TotalPasses uint64
}

// New builds a network for n stream-slots (n must be a power of two, ≥ 2)
// with Decision blocks in the given mode.
func New(n int, mode decision.Mode, schedule Schedule) (*Network, error) {
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("shuffle: slot count %d is not a power of two ≥ 2", n)
	}
	if schedule > Tournament {
		return nil, fmt.Errorf("shuffle: unknown schedule %d", schedule)
	}
	nw := &Network{
		n:         n,
		schedule:  schedule,
		mode:      mode,
		keyMask:   decision.KeyMask(mode),
		blocks:    make([]decision.Block, n/2),
		words:     make([]attr.Attributes, n),
		latchKeys: make([]attr.Key, n),
		auxInit:   make([]uint32, n),
		unsafeKey: make([]uint8, n),
		keys:      make([]attr.Key, n),
		keysTmp:   make([]attr.Key, n),
		aux:       make([]uint32, n),
		auxTmp:    make([]uint32, n),
		engaged:   make([]uint64, n/2),
		accTie:    make([]uint64, n/2),
		accEDF:    make([]uint64, n/2),
		accFCFS:   make([]uint64, n/2),
		block:     make([]attr.Attributes, n),
		idx:       make([]uint16, n),
		idxTmp:    make([]uint16, n),
		ident:     make([]uint16, n),
	}
	nw.dCenter, nw.aCenter = 0x8000, 0x8000
	for i := range nw.blocks {
		nw.blocks[i].Mode = mode
	}
	for i := range nw.ident {
		nw.ident[i] = uint16(i)
	}
	// Empty latches are invalid slots with the latch position as slot ID —
	// the same state SetInput would install for a zero word.
	for i := range nw.latchKeys {
		nw.SetInput(i, attr.Attributes{Slot: attr.SlotID(i)}, attr.Attributes{Slot: attr.SlotID(i)}.Key(0))
	}
	k := bits.TrailingZeros(uint(n))
	switch schedule {
	case Bitonic:
		for b := range nw.engaged {
			nw.engaged[b] = uint64(k * (k + 1) / 2)
		}
	case Tournament:
		for p := 0; p < k; p++ {
			for b := 0; b < n>>(p+1); b++ {
				nw.engaged[b]++
			}
		}
	default:
		for b := range nw.engaged {
			nw.engaged[b] = uint64(k)
		}
	}
	return nw, nil
}

// Slots returns the network's slot count N.
func (nw *Network) Slots() int { return nw.n }

// Schedule returns the configured pass schedule.
func (nw *Network) Schedule() Schedule { return nw.schedule }

// DecisionBlocks exposes the N/2 physical Decision blocks (for rule-hit and
// comparison counters).
func (nw *Network) DecisionBlocks() []decision.Block {
	nw.flushCredits()
	return nw.blocks
}

// Compares returns the cumulative comparison count across all blocks.
func (nw *Network) Compares() uint64 {
	nw.flushCredits()
	var total uint64
	for i := range nw.blocks {
		total += nw.blocks[i].Compares
	}
	return total
}

// TieHits returns the cumulative equal-key slot tie-break count across all
// blocks: decisions that stayed on the fast path only because of the
// tie-break (before it existed, each would have paid the full cascade).
func (nw *Network) TieHits() uint64 {
	nw.flushCredits()
	var total uint64
	for i := range nw.blocks {
		total += nw.blocks[i].TieHits
	}
	return total
}

// CascadeFallbacks returns the cumulative full Table-2 cascade evaluations
// across all blocks (ΣRuleHits): the comparisons the packed keys could not
// decide. Fast-path hit rate is 1 − CascadeFallbacks/Compares; the pre-fix
// rate (without the slot tie-break) is 1 − (CascadeFallbacks+TieHits)/Compares.
func (nw *Network) CascadeFallbacks() uint64 {
	nw.flushCredits()
	var total uint64
	for i := range nw.blocks {
		for _, h := range nw.blocks[i].RuleHits {
			total += h
		}
	}
	return total
}

// PassesPerCycle returns the number of network passes (SCHEDULE-state clock
// cycles) one decision cycle takes under the configured schedule.
func (nw *Network) PassesPerCycle() int {
	k := bits.TrailingZeros(uint(nw.n)) // log2 n
	switch nw.schedule {
	case Bitonic:
		return k * (k + 1) / 2
	default:
		return k
	}
}

// Rebased-key field geometry: both 16-bit wrapped time fields, and the top
// bit of each (the bit a rebased field sets exactly when it leaves its
// [0, 0x8000) safety window).
const (
	keyTimeFields = attr.Key(0xFFFF)<<attr.KeyDeadlineShift |
		attr.Key(0xFFFF)<<attr.KeyArrivalShift
	keyUnsafeD = attr.Key(1) << (attr.KeyDeadlineShift + 15)
	keyUnsafeA = attr.Key(1) << (attr.KeyArrivalShift + 15)
)

// rebase maps a canonical masked key into window-relative form: each wrapped
// time field becomes field − (center − 0x4000), so a field inside its safety
// window lands in [0, 0x8000). Subtracting a common bias per field is a
// bijection that preserves field equality and every subtract-and-test-sign
// (serial) comparison, so the straddle guards and the Table-2 cascade see
// exactly the orders they would on canonical keys — but for two in-window
// keys the raw unsigned compare now *equals* the serial compare even when
// the window spans the 16-bit wrap, which is what lets the guard-free pass
// loops compare raw. (A modular window that crosses raw 0 would otherwise
// order its two ends backwards.) Invalid keys carry no live time fields and
// pass through untouched.
func (nw *Network) rebase(k attr.Key) attr.Key {
	if k>>attr.KeyInvalidBit != 0 {
		return k
	}
	d := uint16(k>>attr.KeyDeadlineShift) - (nw.dCenter - 0x4000)
	a := uint16(k>>attr.KeyArrivalShift) - (nw.aCenter - 0x4000)
	return k&^keyTimeFields |
		attr.Key(d)<<attr.KeyDeadlineShift | attr.Key(a)<<attr.KeyArrivalShift
}

// keyUnsafe reports whether a latched (rebased) key could trip
// decision.FastOrder's serial-number guard against *some* partner: one of
// its rebased time fields sits outside [0, 0x8000) — its top bit is set.
// Two keys inside a common window are at most 0x7FFF apart in that field
// and on the same side of the raw wrap, so their raw order always agrees
// with the subtract-and-test-sign order and the guard cannot trip; invalid
// keys never reach a field guard (the validity bit differs, or only slot
// bits do). While every latched key is safe the pass loops run entirely
// guard-free.
// The returned mask has bit 0 set for a deadline-field straddle risk and
// bit 1 for arrival — the fields escape their windows independently (under
// BA service every backlogged head's chained deadline diverges while its
// arrival hugs the clock), and a field whose latched population is entirely
// in-window needs no guard even while the other field's does. The pass
// loops exploit this with a deadline-only guarded variant.
func (nw *Network) keyUnsafe(k attr.Key) uint8 {
	if k>>attr.KeyInvalidBit != 0 {
		return 0
	}
	u := uint8(0)
	if k&keyUnsafeD != 0 {
		u = 1
	}
	if k&keyUnsafeA != 0 {
		u |= 2
	}
	return u
}

// noteKey folds slot i's recomputed window-safety mask into the per-field
// unsafe-key counts.
func (nw *Network) noteKey(i int, u uint8) {
	o := nw.unsafeKey[i]
	if u == o {
		return
	}
	nw.unsafeKey[i] = u
	nw.nUnsafe += int(b2u(u != 0)) - int(b2u(o != 0))
	nw.nUnsafeA += int(u>>1) - int(o>>1)
}

// SetFieldCenters re-centers the deadline- and arrival-field safety windows
// (dc and ac are packed field values: time − reference). Any centers are
// correct — keys outside a window just run under the straddle guards — but
// centers tracking the service frontier keep sustained workloads guard-free:
// under overload, waiting heads' deadline and arrival fields fall
// arbitrarily far behind the clock the key reference tracks, and under a
// fully served block, chained deadlines run ahead of it — in both regimes
// the fields stay clustered near those of the heads being transmitted. The
// driver re-centers periodically, faster than the fields can drift across a
// half window. Every latched key is re-rebased against the new window
// origins and its safety flag recomputed.
func (nw *Network) SetFieldCenters(dc, ac uint16) {
	if dc == nw.dCenter && ac == nw.aCenter {
		return
	}
	// Shifting the window origin by δ shifts every rebased field by −δ.
	dd := nw.dCenter - dc
	da := nw.aCenter - ac
	nw.dCenter, nw.aCenter = dc, ac
	n, na := 0, 0
	for i, k := range nw.latchKeys {
		if k>>attr.KeyInvalidBit == 0 {
			d := uint16(k>>attr.KeyDeadlineShift) + dd
			a := uint16(k>>attr.KeyArrivalShift) + da
			k = k&^keyTimeFields |
				attr.Key(d)<<attr.KeyDeadlineShift | attr.Key(a)<<attr.KeyArrivalShift
			nw.latchKeys[i] = k
		}
		u := nw.keyUnsafe(k)
		nw.unsafeKey[i] = u
		n += int(b2u(u != 0))
		na += int(u >> 1)
	}
	nw.nUnsafe, nw.nUnsafeA = n, na
}

// Run performs one decision cycle over the N attribute words in slot order,
// packing rank keys for them against reference 0 — RunAt with the zero
// reference, for callers with no virtual clock. Result.Block aliases a
// reused buffer — see the Result docs for the retention contract. Run panics
// if len(in) != N (a wiring error, not a runtime condition).
func (nw *Network) Run(in []attr.Attributes) Result { return nw.RunAt(in, 0) }

// RunAt is Run with a caller-supplied key-normalization reference: callers
// that hold a current virtual time pass it (wrapped) so the one-shot path
// packs keys exactly as the scheduler's hot path does — live time fields
// land mid-window and stay on the branch-free fast path. Any reference is
// correct (the serial-window guard falls back to the cascade); a good one is
// merely faster. Result.Block aliases a reused buffer — see the Result docs.
func (nw *Network) RunAt(in []attr.Attributes, ref attr.Time16) Result {
	if len(in) != nw.n {
		panic(fmt.Sprintf("shuffle: %d inputs wired to a %d-slot network", len(in), nw.n))
	}
	for i := range in {
		nw.SetInput(i, in[i], in[i].Key(ref))
	}
	return nw.run()
}

// RunKeyed performs one decision cycle over the N attribute words and their
// precomputed rank keys (attr.Key, all packed against one common reference).
// This is the zero-recompute hot path: the scheduler maintains keys in the
// Register Base blocks, refreshed only on PRIORITY_UPDATE/INGEST, and the
// network just routes them. Result.Block aliases a reused buffer — see the
// Result docs. Panics on length mismatches (wiring errors).
func (nw *Network) RunKeyed(in []attr.Attributes, keys []attr.Key) Result {
	if len(in) != nw.n || len(keys) != nw.n {
		panic(fmt.Sprintf("shuffle: %d words / %d keys wired to a %d-slot network", len(in), len(keys), nw.n))
	}
	for i := range in {
		nw.SetInput(i, in[i], keys[i])
	}
	return nw.run()
}

// SetInput latches slot i's attribute word and packed rank key directly into
// the input registers, ahead of RunLoaded. This is the bus the Register Base
// blocks drive in hardware; the schedules route a permutation over these
// registers without writing them, so a latched slot stays latched across
// cycles and only *changed* slots need relatching. The key is stored
// pre-masked for the decision mode and rebased against the safety-window
// origins, and its serial-window safety is tracked so clean cycles skip the
// straddle guards (see rebase and keyUnsafe).
func (nw *Network) SetInput(i int, w attr.Attributes, k attr.Key) {
	k = nw.rebase(k & nw.keyMask)
	nw.words[i] = w
	nw.latchKeys[i] = k
	nw.auxInit[i] = uint32(w.Slot)<<16 | uint32(uint16(i))
	nw.noteKey(i, nw.keyUnsafe(k))
}

// SetInputKey relatches only slot i's packed rank key, for bulk drivers on
// the Light path: RunLoadedLight routes the key and identity files and never
// reads the latched attribute words, so a driver that consumes decisions
// positionally (BlockSlotAt) can skip the word and identity stores on every
// head advance. The identity aux word keeps the slot ID from the latch's
// last full SetInput (the Register Base wiring, fixed per latch position in
// practice); the word register itself goes stale — drivers that later need a
// word-materializing run must force a full relatch first, as core's
// runCycle does when resuming from its lean path.
func (nw *Network) SetInputKey(i int, k attr.Key) {
	k = nw.rebase(k & nw.keyMask)
	nw.latchKeys[i] = k
	nw.noteKey(i, nw.keyUnsafe(k))
}

// RunLoaded performs one decision cycle over the registers latched with
// SetInput (each slot reflecting its latest latch, from this cycle or any
// earlier one). Result.Block aliases a reused buffer — see the Result docs.
func (nw *Network) RunLoaded() Result { return nw.run() }

// RunLoadedLight performs one decision cycle over the latched registers and
// returns only the Light outcome: the key and aux register files are routed
// as usual, but the attribute-word block is not materialized — bulk drivers
// that consume the order positionally (BlockSlotAt) skip that gather. The
// counters, Cycles and TotalPasses advance exactly as under RunLoaded.
func (nw *Network) RunLoadedLight() Light {
	if nw.oracle {
		return nw.lightFromReference()
	}
	nw.Cycles++
	var lt Light
	switch nw.schedule {
	case Tournament:
		lt = nw.runTournamentSoA()
	case Bitonic:
		nw.runBitonicSoA()
		lt = nw.lightFromFiles()
	default:
		nw.runPaperLogNSoA()
		lt = nw.lightFromFiles()
	}
	nw.TotalPasses += uint64(lt.Passes)
	return lt
}

// BlockSlotAt returns the slot ID at position r of the most recent cycle's
// block order (r = 0 is the winner). It reads the permuted aux register file
// directly — the positional view RunLoadedLight's callers iterate instead of
// the materialized Result.Block.
func (nw *Network) BlockSlotAt(r int) attr.SlotID {
	return attr.SlotID(nw.finAux[r] >> 16)
}

// lightFromFiles derives the Light outcome from the final register files of
// a block schedule: the valid prefix is scanned off the key file's invalid
// bits (invalid keys sort to the tail exactly as invalid words do — the key
// plane and the cascade share the validity rule).
func (nw *Network) lightFromFiles() Light {
	valid := nw.n
	fk := nw.finKeys
	for valid > 0 && fk[valid-1]>>attr.KeyInvalidBit != 0 { //sslint:bounded valid strictly decreases toward its zero floor
		valid--
	}
	lt := Light{Valid: valid, Idle: valid == 0, Passes: nw.lastPasses()}
	if valid > 0 {
		lt.WinnerSlot = attr.SlotID(nw.finAux[0] >> 16)
	}
	return lt
}

// lastPasses returns the pass count of the schedule (all schedules run a
// fixed number of passes per cycle).
func (nw *Network) lastPasses() int { return nw.PassesPerCycle() }

// run executes the configured pass schedule over the latched registers.
// Under the oracle flag it routes through the reference index-permutation
// implementation instead (identical results and counters, by the
// differential tests — the reference is the spec, the key plane the
// implementation).
func (nw *Network) run() Result {
	nw.Cycles++
	if nw.oracle {
		return nw.runReference()
	}
	var r Result
	switch nw.schedule {
	case Tournament:
		lt := nw.runTournamentSoA()
		r = Result{Passes: lt.Passes}
		r.Winner = nw.words[nw.finAux[0]&0xFFFF]
	case Bitonic:
		r = Result{Passes: nw.runBitonicSoA()}
		r.Block = nw.emitBlock()
		r.Winner = r.Block[0]
	default:
		r = Result{Passes: nw.runPaperLogNSoA()}
		r.Block = nw.emitBlock()
		r.Winner = r.Block[0]
	}
	nw.TotalPasses += uint64(r.Passes)
	return r
}

// emitBlock applies the final permutation to the latched words, filling the
// reused block buffer Result.Block aliases: the aux file's low half is the
// latch position each block rank came from.
func (nw *Network) emitBlock() []attr.Attributes {
	words, block := nw.words, nw.block
	for i, a := range nw.finAux {
		block[i] = words[a&0xFFFF]
	}
	return block
}

// b2u converts a bool to 0/1 without a branch (the compiler lowers it to a
// flag materialization, keeping the compare kernels branch-free).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// creditCompares bulk-credits each Decision block with the cycle's engaged
// pass count — exactly one compare per engaged pass. The credit is deferred:
// the hot path bumps a cycle counter and flushCredits applies
// engaged[b]·cycles when the counters are read. Straddles resolve inline —
// they still cost exactly one compare, so only their RuleHits are charged
// separately — and the per-block totals match the per-pair reference
// implementation bit for bit.
func (nw *Network) creditCompares() {
	nw.pendingCredits++
}

// flushCredits lands the deferred bulk Compares credits and the dense
// tie/rule accumulator lanes into the block file. Every reader of per-block
// counters goes through here. The accumulators can only be nonzero after at
// least one unflushed run, so the pendingCredits gate covers them too.
func (nw *Network) flushCredits() {
	if nw.pendingCredits == 0 {
		return
	}
	c := nw.pendingCredits
	nw.pendingCredits = 0
	blocks, engaged := nw.blocks, nw.engaged
	for b := range blocks {
		blocks[b].Compares += engaged[b] * c
		blocks[b].TieHits += nw.accTie[b]
		blocks[b].RuleHits[decision.RuleEDF] += nw.accEDF[b]
		blocks[b].RuleHits[decision.RuleFCFS] += nw.accFCFS[b]
		nw.accTie[b] = 0
		nw.accEDF[b] = 0
		nw.accFCFS[b] = 0
	}
}

// runPaperLogNSoA executes log₂N shuffle-exchange passes routing winners and
// losers on the key plane. The perfect shuffle is fused into the compare
// loop: Decision block b's pair in every pass is positions (b, b+N/2) of the
// previous pass's output — two sequential streams — and its ordered pair
// lands at (2b, 2b+1) of this pass's, so the register files ping-pong
// between two buffers with no separate permutation step.
//
// Counter accounting: every engaged pass is exactly one compare per block
// (creditCompares); a tie (equal masked keys) bumps TieHits inline; a
// straddle flips the exchange direction to the serial order and charges the
// rule the cascade would have fired (RuleEDF or RuleFCFS — see the
// serial-flip lemma in the package comment).
func (nw *Network) runPaperLogNSoA() int {
	n := nw.n
	h := n / 2
	k := bits.TrailingZeros(uint(n))
	nw.creditCompares()
	accT, accD, accF := nw.accTie[:h], nw.accEDF[:h], nw.accFCFS[:h]
	srcK, srcA := nw.latchKeys, nw.auxInit
	dstK, dstA := nw.keys, nw.aux
	altK, altA := nw.keysTmp, nw.auxTmp
	safe := nw.nUnsafe == 0
	// Arrival fields rarely leave their window (they hug the clock), while
	// chained BA deadlines diverge without bound — so the common guarded
	// regime needs only the deadline guard, and the arrival guard's extra
	// field extraction is skipped unless an arrival key actually straddles.
	guardD := nw.nUnsafeA == 0
	for p := 0; p < k; p++ {
		skLo, skHi := srcK[:h], srcK[h:h+h]
		saLo, saHi := srcA[:h], srcA[h:h+h]
		dk, da := dstK[:h+h], dstA[:h+h]
		if safe {
			for b := range skLo {
				ka, kb := skLo[b], skHi[b]
				aa, ab := saLo[b], saHi[b]
				d := uint64(ka ^ kb)
				eq := b2u(d == 0)
				af := b2u(ka < kb) | eq&b2u(aa>>16 < ab>>16)
				mask := af - 1
				kx := attr.Key(d & mask)
				ax := (aa ^ ab) & uint32(mask)
				o := 2 * b
				dk[o+1], dk[o] = kb^kx, ka^kx
				da[o+1], da[o] = ab^ax, aa^ax
				accT[b] += eq
			}
		} else if guardD {
			for b := range skLo {
				ka, kb := skLo[b], skHi[b]
				aa, ab := saLo[b], saHi[b]
				d := uint64(ka ^ kb)
				eq := b2u(d == 0)
				dd := uint32(uint16(ka>>attr.KeyDeadlineShift)) - uint32(uint16(kb>>attr.KeyDeadlineShift))
				gd := uint64(dd>>31^dd>>15) & b2u(d>>attr.KeyDeadlineShift != 0) &^ (d >> attr.KeyInvalidBit)
				af := (b2u(ka < kb) | eq&b2u(aa>>16 < ab>>16)) ^ gd
				mask := af - 1
				kx := attr.Key(d & mask)
				ax := (aa ^ ab) & uint32(mask)
				o := 2 * b
				dk[o+1], dk[o] = kb^kx, ka^kx
				da[o+1], da[o] = ab^ax, aa^ax
				accT[b] += eq
				accD[b] += gd
			}
		} else {
			for b := range skLo {
				ka, kb := skLo[b], skHi[b]
				aa, ab := saLo[b], saHi[b]
				d := uint64(ka ^ kb)
				eq := b2u(d == 0)
				dd := uint32(uint16(ka>>attr.KeyDeadlineShift)) - uint32(uint16(kb>>attr.KeyDeadlineShift))
				ad := uint32(uint16(ka>>attr.KeyArrivalShift)) - uint32(uint16(kb>>attr.KeyArrivalShift))
				gd := uint64(dd>>31^dd>>15) & b2u(d>>attr.KeyDeadlineShift != 0) &^ (d >> attr.KeyInvalidBit)
				ga := uint64(ad>>31^ad>>15) & b2u(d>>attr.KeyTieShift == 0) & b2u(d>>attr.KeyArrivalShift != 0)
				af := (b2u(ka < kb) | eq&b2u(aa>>16 < ab>>16)) ^ (gd | ga)
				mask := af - 1
				kx := attr.Key(d & mask)
				ax := (aa ^ ab) & uint32(mask)
				o := 2 * b
				dk[o+1], dk[o] = kb^kx, ka^kx
				da[o+1], da[o] = ab^ax, aa^ax
				accT[b] += eq
				accD[b] += gd
				accF[b] += ga
			}
		}
		srcK, srcA = dstK, dstA
		dstK, dstA, altK, altA = altK, altA, dstK, dstA
	}
	nw.finKeys, nw.finAux = srcK, srcA
	return k
}

// runTournamentSoA executes the WR max-finding schedule on the key plane:
// each pass compares the surviving candidates pairwise and routes only the
// winner's (key, aux) onward, halving the live prefix of the register file.
func (nw *Network) runTournamentSoA() Light {
	n := nw.n
	nw.creditCompares()
	accT, accD, accF := nw.accTie, nw.accEDF, nw.accFCFS
	srcK, srcA := nw.latchKeys, nw.auxInit
	dstK, dstA := nw.keys, nw.aux
	safe := nw.nUnsafe == 0
	passes := 0
	for m := n; m > 1; m /= 2 {
		sk, sa := srcK[:m], srcA[:m]
		dk, da := dstK[:m/2], dstA[:m/2]
		if safe {
			for b := range dk {
				i := 2 * b
				ka, kb := sk[i], sk[i+1]
				aa, ab := sa[i], sa[i+1]
				d := uint64(ka ^ kb)
				eq := b2u(d == 0)
				af := b2u(ka < kb) | eq&b2u(aa>>16 < ab>>16)
				sel := -af
				dk[b] = kb ^ attr.Key(d&sel)
				da[b] = ab ^ (aa^ab)&uint32(sel)
				accT[b] += eq
			}
		} else {
			for b := range dk {
				i := 2 * b
				ka, kb := sk[i], sk[i+1]
				aa, ab := sa[i], sa[i+1]
				d := uint64(ka ^ kb)
				eq := b2u(d == 0)
				dd := uint32(uint16(ka>>attr.KeyDeadlineShift)) - uint32(uint16(kb>>attr.KeyDeadlineShift))
				ad := uint32(uint16(ka>>attr.KeyArrivalShift)) - uint32(uint16(kb>>attr.KeyArrivalShift))
				gd := uint64(dd>>31^dd>>15) & b2u(d>>attr.KeyDeadlineShift != 0) &^ (d >> attr.KeyInvalidBit)
				ga := uint64(ad>>31^ad>>15) & b2u(d>>attr.KeyTieShift == 0) & b2u(d>>attr.KeyArrivalShift != 0)
				af := (b2u(ka < kb) | eq&b2u(aa>>16 < ab>>16)) ^ (gd | ga)
				sel := -af
				dk[b] = kb ^ attr.Key(d&sel)
				da[b] = ab ^ (aa^ab)&uint32(sel)
				accT[b] += eq
				accD[b] += gd
				accF[b] += ga
			}
		}
		srcK, srcA = dstK, dstA
		passes++
	}
	nw.finKeys, nw.finAux = dstK, dstA
	wk := dstK[0]
	return Light{
		WinnerSlot: attr.SlotID(dstA[0] >> 16),
		Idle:       wk>>attr.KeyInvalidBit != 0,
		Passes:     passes,
	}
}

// runBitonicSoA executes a Batcher bitonic sorting schedule on the key
// plane: for each (k, j) stage the steering muxes pair position i with i^j
// and the owning block compare-exchanges in the direction given by bit k of
// i. The register files are permuted in place; every stage engages exactly
// N/2 blocks, one pass each.
func (nw *Network) runBitonicSoA() int {
	n := nw.n
	nw.creditCompares()
	accT, accD, accF := nw.accTie, nw.accEDF, nw.accFCFS
	dk, da := nw.keys[:n], nw.aux[:n]
	copy(dk, nw.latchKeys)
	copy(da, nw.auxInit)
	safe := nw.nUnsafe == 0
	passes := 0
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			b := 0
			if safe {
				for i := 0; i < n; i++ {
					l := i ^ j
					if l <= i {
						continue
					}
					ka, kb := dk[i], dk[l]
					aa, ab := da[i], da[l]
					d := uint64(ka ^ kb)
					eq := b2u(d == 0)
					af := b2u(ka < kb) | eq&b2u(aa>>16 < ab>>16)
					asc := b2u(i&k == 0)
					swap := -(af ^ asc)
					kx := attr.Key(d & swap)
					ax := (aa ^ ab) & uint32(swap)
					dk[i], dk[l] = ka^kx, kb^kx
					da[i], da[l] = aa^ax, ab^ax
					accT[b] += eq
					b++
				}
			} else {
				for i := 0; i < n; i++ {
					l := i ^ j
					if l <= i {
						continue
					}
					ka, kb := dk[i], dk[l]
					aa, ab := da[i], da[l]
					d := uint64(ka ^ kb)
					eq := b2u(d == 0)
					dd := uint32(uint16(ka>>attr.KeyDeadlineShift)) - uint32(uint16(kb>>attr.KeyDeadlineShift))
					ad := uint32(uint16(ka>>attr.KeyArrivalShift)) - uint32(uint16(kb>>attr.KeyArrivalShift))
					gd := uint64(dd>>31^dd>>15) & b2u(d>>attr.KeyDeadlineShift != 0) &^ (d >> attr.KeyInvalidBit)
					ga := uint64(ad>>31^ad>>15) & b2u(d>>attr.KeyTieShift == 0) & b2u(d>>attr.KeyArrivalShift != 0)
					af := (b2u(ka < kb) | eq&b2u(aa>>16 < ab>>16)) ^ (gd | ga)
					asc := b2u(i&k == 0)
					swap := -(af ^ asc)
					kx := attr.Key(d & swap)
					ax := (aa ^ ab) & uint32(swap)
					dk[i], dk[l] = ka^kx, kb^kx
					da[i], da[l] = aa^ax, ab^ax
					accT[b] += eq
					accD[b] += gd
					accF[b] += ga
					b++
				}
			}
			passes++
		}
	}
	nw.finKeys, nw.finAux = dk, da
	return passes
}

// --- Reference (oracle) implementation -----------------------------------
//
// The pre-key-plane implementation, kept verbatim: the steering muxes
// permute a 16-bit index file over the latched inputs and every pair pays a
// per-pair comparator call. The differential and fuzz tests drive it against
// the key plane and require bit-identical winners, block orders and counter
// totals; it is not on any production path.

// compareAt orders latch x against latch y on Decision block b —
// CompareKeyed's body with the network's registers already in scope; the
// counter semantics are identical. This is the oracle's per-pair comparator
// (the key-plane pass loops replace it with branch-free compare-exchanges);
// it stays per-pair so tests can pin the equivalence one compare at a time.
func (nw *Network) compareAt(b int, x, y uint16) (xFirst bool) {
	bl := &nw.blocks[b]
	if first, decided := decision.FastOrder(bl.Mode, nw.latchKeys[x], nw.latchKeys[y]); decided {
		bl.Compares++
		return first
	}
	if decision.KeyTie(bl.Mode, nw.latchKeys[x], nw.latchKeys[y]) {
		bl.Compares++
		bl.TieHits++
		return nw.words[x].Slot < nw.words[y].Slot
	}
	return !bl.Compare(nw.words[x], nw.words[y]).Swapped
}

// runReference dispatches one decision cycle through the oracle.
func (nw *Network) runReference() Result {
	copy(nw.idx, nw.ident)
	var r Result
	switch nw.schedule {
	case Tournament:
		r = nw.runTournamentRef()
	case Bitonic:
		r = nw.runBitonicRef()
	default:
		r = nw.runPaperLogNRef()
	}
	nw.TotalPasses += uint64(r.Passes)
	return r
}

// lightFromReference runs the oracle and derives the Light view, mirroring
// the permuted register files so BlockSlotAt works identically.
func (nw *Network) lightFromReference() Light {
	nw.Cycles++
	r := nw.runReference()
	for i, x := range nw.idx {
		nw.keys[i] = nw.latchKeys[x]
		nw.aux[i] = nw.auxInit[x]
	}
	nw.finKeys, nw.finAux = nw.keys, nw.aux
	if nw.schedule == Tournament {
		return Light{WinnerSlot: r.Winner.Slot, Idle: !r.Winner.Valid, Passes: r.Passes}
	}
	valid := nw.n
	for valid > 0 && !r.Block[valid-1].Valid {
		valid--
	}
	lt := Light{Valid: valid, Idle: valid == 0, Passes: r.Passes}
	if valid > 0 {
		lt.WinnerSlot = r.Block[0].Slot
	}
	return lt
}

// emitBlockRef applies the oracle's final index permutation to the latched
// words, filling the same reused buffer Result.Block aliases.
func (nw *Network) emitBlockRef() []attr.Attributes {
	for i, x := range nw.idx {
		nw.block[i] = nw.words[x]
	}
	return nw.block
}

// runPaperLogNRef executes log₂N shuffle-exchange passes routing winners and
// losers: each pass applies the perfect shuffle, then each Decision block
// compare-exchanges its pair (winner to the even output).
func (nw *Network) runPaperLogNRef() Result {
	idx, tmp := nw.idx, nw.idxTmp
	k := bits.TrailingZeros(uint(nw.n))
	for p := 0; p < k; p++ {
		perfectShuffle(tmp, idx)
		for b := 0; b < nw.n/2; b++ {
			x, y := tmp[2*b], tmp[2*b+1]
			if !nw.compareAt(b, x, y) {
				x, y = y, x
			}
			idx[2*b], idx[2*b+1] = x, y
		}
	}
	block := nw.emitBlockRef()
	return Result{Winner: block[0], Block: block, Passes: k}
}

// runBitonicRef executes the Batcher bitonic schedule per pair on the index
// file: for each (k, j) stage element i pairs with i^j and the block
// compare-exchanges in the direction given by bit k of i.
func (nw *Network) runBitonicRef() Result {
	idx := nw.idx
	passes := 0
	for k := 2; k <= nw.n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			b := 0
			for i := 0; i < nw.n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				x, y := idx[i], idx[l]
				first := nw.compareAt(b, x, y)
				b++
				if first != (i&k == 0) { // winner to the ascending end
					x, y = y, x
				}
				idx[i], idx[l] = x, y
			}
			passes++
		}
	}
	block := nw.emitBlockRef()
	return Result{Winner: block[0], Block: block, Passes: passes}
}

// runTournamentRef executes the WR max-finding schedule per pair: each pass
// compares the surviving candidates and routes only winners onward.
func (nw *Network) runTournamentRef() Result {
	idx := nw.idx
	passes := 0
	for m := nw.n; m > 1; m /= 2 {
		for b := 0; b < m/2; b++ {
			x, y := idx[2*b], idx[2*b+1]
			if nw.compareAt(b, x, y) {
				idx[b] = x
			} else {
				idx[b] = y
			}
		}
		passes++
	}
	return Result{Winner: nw.words[idx[0]], Passes: passes}
}

// perfectShuffle writes the perfect shuffle of src into dst:
// dst[2i] = src[i], dst[2i+1] = src[i + N/2]. This is the fixed wiring
// between recirculation register outputs and Decision-block inputs; the
// key-plane pass loops fuse it into their compare loops, the oracle applies
// it explicitly.
func perfectShuffle(dst, src []uint16) {
	n := len(src)
	for i := 0; i < n/2; i++ {
		dst[2*i] = src[i]
		dst[2*i+1] = src[i+n/2]
	}
}

// UnsafeKeys reports how many latched keys currently sit outside the serial
// safety window (diagnostics; zero in steady state).
func (nw *Network) UnsafeKeys() int { return nw.nUnsafe }
