// Package shuffle implements the ShareStreams single-stage recirculating
// shuffle-exchange network: N/2 Decision blocks behind steering muxes,
// through which the N stream-slot attribute words recirculate to be ordered
// (Figure 4 of the paper).
//
// The recirculating arrangement is the paper's key area trade-off (§3, §4.3):
// a Decision-block *tree* needs N-1 blocks and cannot be pipelined under
// window-constrained disciplines (the winner must circulate back before the
// next decision), so ShareStreams keeps only the lowermost tree level — N/2
// blocks — and recirculates log₂N times per decision cycle.
//
// Three pass schedules are modeled:
//
//   - PaperLogN — the paper's schedule: log₂N shuffle-exchange passes,
//     routing winners and losers (the BA configuration). Provably places the
//     highest-priority stream at the front and the lowest-priority stream at
//     the back of the block (see package tests); the interior of the block is
//     ordered well but not guaranteed fully sorted for adversarial inputs.
//   - Bitonic — an exact-sort extension: a Batcher bitonic schedule executed
//     on the same N/2 blocks by the steering muxes, log₂N·(log₂N+1)/2
//     passes. Used by the ablation benches to price exact blocks.
//   - Tournament — the WR (winner-only routing) configuration: only winners
//     are routed onward, halving the live candidates each pass; after log₂N
//     passes a single winner remains. This eases physical interconnect at
//     the cost of the block.
package shuffle

import (
	"fmt"
	"math/bits"

	"repro/internal/attr"
	"repro/internal/decision"
)

// Schedule selects the steering-mux program for a decision cycle.
type Schedule uint8

const (
	// PaperLogN routes winners and losers through log₂N shuffle-exchange
	// passes, yielding the paper's "block" (BA configuration).
	PaperLogN Schedule = iota
	// Bitonic fully sorts in log₂N·(log₂N+1)/2 passes (exact-block
	// extension).
	Bitonic
	// Tournament routes winners only (WR / max-finding configuration).
	Tournament
)

// String returns the schedule name.
func (s Schedule) String() string {
	switch s {
	case PaperLogN:
		return "paper-logn"
	case Bitonic:
		return "bitonic"
	case Tournament:
		return "tournament"
	default:
		return fmt.Sprintf("schedule(%d)", uint8(s))
	}
}

// Result is the outcome of one decision cycle through the network.
type Result struct {
	// Winner is the highest-priority attribute word.
	Winner attr.Attributes
	// Block is the ordered list of all N words, front = highest priority
	// (BA schedules only; nil under Tournament, which routes winners only).
	//
	// Block aliases a buffer owned by the Network that the next Run /
	// RunKeyed call overwrites — the recirculation registers themselves,
	// not a fresh copy. Contents are stable until that next call; callers
	// that retain the block across cycles must copy it first. This is the
	// same contract core.CycleResult.Transmissions uses, and it is what
	// keeps the decision hot path allocation-free.
	Block []attr.Attributes
	// Passes is the number of network passes the cycle consumed — each
	// pass is one hardware clock cycle in the SCHEDULE state.
	Passes int
}

// keyed is one recirculation-register value: an attribute word traveling
// with its packed rank key, so each Decision block can resolve most
// compare-exchanges on a single integer compare (decision.CompareKeyed).
type keyed struct {
	k attr.Key
	w attr.Attributes
}

// Network is one recirculating shuffle-exchange network instance.
type Network struct {
	n        int
	schedule Schedule
	blocks   []decision.Block // the N/2 physical Decision blocks

	// in holds the latched input registers — the words the Register Base
	// blocks drive onto the bus, with their packed keys. The schedules
	// never write in: recirculation is modeled as a permutation of the
	// idx register file (steering-mux state), so an unchanged slot's
	// register needs no relatching between cycles (SetInput). All buffers
	// are reused across cycles to keep the hot path allocation-free (the
	// decision loop runs hundreds of thousands of times in the Table 3
	// and throughput experiments); block is the buffer Result.Block
	// aliases.
	in          []keyed
	idx, idxTmp []uint16
	ident       []uint16 // precomputed identity permutation
	block       []attr.Attributes

	// Cycles counts decision cycles run; TotalPasses the cumulative
	// SCHEDULE-state clock cycles.
	Cycles      uint64
	TotalPasses uint64
}

// New builds a network for n stream-slots (n must be a power of two, ≥ 2)
// with Decision blocks in the given mode.
func New(n int, mode decision.Mode, schedule Schedule) (*Network, error) {
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("shuffle: slot count %d is not a power of two ≥ 2", n)
	}
	if schedule > Tournament {
		return nil, fmt.Errorf("shuffle: unknown schedule %d", schedule)
	}
	nw := &Network{
		n:        n,
		schedule: schedule,
		blocks:   make([]decision.Block, n/2),
		in:       make([]keyed, n),
		idx:      make([]uint16, n),
		idxTmp:   make([]uint16, n),
		ident:    make([]uint16, n),
		block:    make([]attr.Attributes, n),
	}
	for i := range nw.blocks {
		nw.blocks[i].Mode = mode
	}
	for i := range nw.ident {
		nw.ident[i] = uint16(i)
	}
	return nw, nil
}

// Slots returns the network's slot count N.
func (nw *Network) Slots() int { return nw.n }

// Schedule returns the configured pass schedule.
func (nw *Network) Schedule() Schedule { return nw.schedule }

// DecisionBlocks exposes the N/2 physical Decision blocks (for rule-hit and
// comparison counters).
func (nw *Network) DecisionBlocks() []decision.Block { return nw.blocks }

// Compares returns the cumulative comparison count across all blocks.
func (nw *Network) Compares() uint64 {
	var total uint64
	for i := range nw.blocks {
		total += nw.blocks[i].Compares
	}
	return total
}

// TieHits returns the cumulative equal-key slot tie-break count across all
// blocks: decisions that stayed on the fast path only because of the
// tie-break (before it existed, each would have paid the full cascade).
func (nw *Network) TieHits() uint64 {
	var total uint64
	for i := range nw.blocks {
		total += nw.blocks[i].TieHits
	}
	return total
}

// CascadeFallbacks returns the cumulative full Table-2 cascade evaluations
// across all blocks (ΣRuleHits): the comparisons the packed keys could not
// decide. Fast-path hit rate is 1 − CascadeFallbacks/Compares; the pre-fix
// rate (without the slot tie-break) is 1 − (CascadeFallbacks+TieHits)/Compares.
func (nw *Network) CascadeFallbacks() uint64 {
	var total uint64
	for i := range nw.blocks {
		for _, h := range nw.blocks[i].RuleHits {
			total += h
		}
	}
	return total
}

// PassesPerCycle returns the number of network passes (SCHEDULE-state clock
// cycles) one decision cycle takes under the configured schedule.
func (nw *Network) PassesPerCycle() int {
	k := bits.TrailingZeros(uint(nw.n)) // log2 n
	switch nw.schedule {
	case Bitonic:
		return k * (k + 1) / 2
	default:
		return k
	}
}

// Run performs one decision cycle over the N attribute words in slot order,
// packing rank keys for them on the way in (callers that maintain keys
// across cycles use RunKeyed and skip that work). Result.Block aliases a
// reused buffer — see the Result docs for the retention contract. Run
// panics if len(in) != N (a wiring error, not a runtime condition).
func (nw *Network) Run(in []attr.Attributes) Result {
	if len(in) != nw.n {
		panic(fmt.Sprintf("shuffle: %d inputs wired to a %d-slot network", len(in), nw.n))
	}
	// Without a caller-supplied virtual time there is no better
	// normalization reference than a fixed one; the fast path's
	// serial-window guard keeps any reference exact (see decision.FastOrder).
	for i := range in {
		nw.in[i] = keyed{k: in[i].Key(0), w: in[i]}
	}
	return nw.run()
}

// RunKeyed performs one decision cycle over the N attribute words and their
// precomputed rank keys (attr.Key, all packed against one common reference).
// This is the zero-recompute hot path: the scheduler maintains keys in the
// Register Base blocks, refreshed only on PRIORITY_UPDATE/INGEST, and the
// network just routes them. Result.Block aliases a reused buffer — see the
// Result docs. Panics on length mismatches (wiring errors).
func (nw *Network) RunKeyed(in []attr.Attributes, keys []attr.Key) Result {
	if len(in) != nw.n || len(keys) != nw.n {
		panic(fmt.Sprintf("shuffle: %d words / %d keys wired to a %d-slot network", len(in), len(keys), nw.n))
	}
	for i := range in {
		nw.in[i] = keyed{k: keys[i], w: in[i]}
	}
	return nw.run()
}

// SetInput latches slot i's attribute word and packed rank key directly into
// the input registers, ahead of RunLoaded. This is the bus the Register Base
// blocks drive in hardware; the schedules route a permutation over these
// registers without writing them, so a latched slot stays latched across
// cycles and only *changed* slots need relatching.
func (nw *Network) SetInput(i int, w attr.Attributes, k attr.Key) {
	nw.in[i] = keyed{k: k, w: w}
}

// RunLoaded performs one decision cycle over the registers latched with
// SetInput (each slot reflecting its latest latch, from this cycle or any
// earlier one). Result.Block aliases a reused buffer — see the Result docs.
func (nw *Network) RunLoaded() Result { return nw.run() }

// run executes the configured pass schedule: the steering muxes permute the
// idx register file over the latched inputs, so the pass loops move 16-bit
// indices instead of whole attribute words.
func (nw *Network) run() Result {
	nw.Cycles++
	copy(nw.idx, nw.ident)
	var r Result
	switch nw.schedule {
	case Tournament:
		r = nw.runTournament()
	case Bitonic:
		r = nw.runBitonic()
	default:
		r = nw.runPaperLogN()
	}
	nw.TotalPasses += uint64(r.Passes)
	return r
}

// emitBlock applies the final permutation to the latched inputs, filling the
// reused block buffer Result.Block aliases.
func (nw *Network) emitBlock() []attr.Attributes {
	for i, x := range nw.idx {
		nw.block[i] = nw.in[x].w
	}
	return nw.block
}

// compareAt orders in[x] against in[y] on Decision block b — CompareKeyed's
// body with the network's registers already in scope; the counter semantics
// are identical. The two paper schedules open-code this body in their pass
// loops (one non-inlinable call per compare instead of two — these loops are
// the hottest code in the repository); Bitonic, an ablation-only schedule,
// calls it as is.
func (nw *Network) compareAt(b int, x, y uint16) (xFirst bool) {
	bl := &nw.blocks[b]
	if first, decided := decision.FastOrder(bl.Mode, nw.in[x].k, nw.in[y].k); decided {
		bl.Compares++
		return first
	}
	if decision.KeyTie(bl.Mode, nw.in[x].k, nw.in[y].k) {
		bl.Compares++
		bl.TieHits++
		return nw.in[x].w.Slot < nw.in[y].w.Slot
	}
	return !bl.Compare(nw.in[x].w, nw.in[y].w).Swapped
}

// runPaperLogN executes log₂N shuffle-exchange passes routing winners and
// losers: each pass applies the perfect shuffle, then each Decision block
// compare-exchanges its pair (winner to the even output).
func (nw *Network) runPaperLogN() Result {
	in, idx, tmp := nw.in, nw.idx, nw.idxTmp
	k := bits.TrailingZeros(uint(nw.n))
	for p := 0; p < k; p++ {
		perfectShuffle(tmp, idx)
		for b := 0; b < nw.n/2; b++ {
			x, y := tmp[2*b], tmp[2*b+1]
			// compareAt, open-coded.
			bl := &nw.blocks[b]
			first, decided := decision.FastOrder(bl.Mode, in[x].k, in[y].k)
			if decided {
				bl.Compares++
			} else if decision.KeyTie(bl.Mode, in[x].k, in[y].k) {
				bl.Compares++
				bl.TieHits++
				first = in[x].w.Slot < in[y].w.Slot
			} else {
				first = !bl.Compare(in[x].w, in[y].w).Swapped
			}
			if !first {
				x, y = y, x
			}
			idx[2*b], idx[2*b+1] = x, y
		}
	}
	block := nw.emitBlock()
	return Result{Winner: block[0], Block: block, Passes: k}
}

// runBitonic executes a Batcher bitonic sorting schedule on the N/2 blocks:
// for each (k, j) stage the steering muxes pair element i with i^j and the
// block compare-exchanges in the direction given by bit k of i. Every stage
// engages exactly N/2 blocks, one pass each.
func (nw *Network) runBitonic() Result {
	idx := nw.idx
	passes := 0
	for k := 2; k <= nw.n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			b := 0
			for i := 0; i < nw.n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				x, y := idx[i], idx[l]
				first := nw.compareAt(b, x, y)
				b++
				if first != (i&k == 0) { // winner to the ascending end
					x, y = y, x
				}
				idx[i], idx[l] = x, y
			}
			passes++
		}
	}
	block := nw.emitBlock()
	return Result{Winner: block[0], Block: block, Passes: passes}
}

// runTournament executes the WR max-finding schedule: each pass compares the
// surviving candidates pairwise and routes only winners onward.
func (nw *Network) runTournament() Result {
	in, idx := nw.in, nw.idx
	passes := 0
	for m := nw.n; m > 1; m /= 2 {
		for b := 0; b < m/2; b++ {
			x, y := idx[2*b], idx[2*b+1]
			// compareAt, open-coded.
			bl := &nw.blocks[b]
			first, decided := decision.FastOrder(bl.Mode, in[x].k, in[y].k)
			if decided {
				bl.Compares++
			} else if decision.KeyTie(bl.Mode, in[x].k, in[y].k) {
				bl.Compares++
				bl.TieHits++
				first = in[x].w.Slot < in[y].w.Slot
			} else {
				first = !bl.Compare(in[x].w, in[y].w).Swapped
			}
			if first {
				idx[b] = x
			} else {
				idx[b] = y
			}
		}
		passes++
	}
	return Result{Winner: in[idx[0]].w, Passes: passes}
}

// perfectShuffle writes the perfect shuffle of src into dst:
// dst[2i] = src[i], dst[2i+1] = src[i + N/2]. This is the fixed wiring
// between recirculation register outputs and Decision-block inputs.
func perfectShuffle(dst, src []uint16) {
	n := len(src)
	for i := 0; i < n/2; i++ {
		dst[2*i] = src[i]
		dst[2*i+1] = src[i+n/2]
	}
}
