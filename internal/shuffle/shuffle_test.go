package shuffle

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/decision"
)

// mkInputs builds n valid attribute words with the given deadlines (slot i
// gets deadlines[i]); arrivals are zero so ties resolve by slot ID.
func mkInputs(deadlines []uint16) []attr.Attributes {
	in := make([]attr.Attributes, len(deadlines))
	for i, d := range deadlines {
		in[i] = attr.Attributes{Deadline: attr.Time16(d), Slot: attr.SlotID(i), Valid: true}
	}
	return in
}

// refSorted returns the inputs sorted by the Decision-block ordering.
func refSorted(in []attr.Attributes, mode decision.Mode) []attr.Attributes {
	out := make([]attr.Attributes, len(in))
	copy(out, in)
	sort.SliceStable(out, func(i, j int) bool { return decision.Less(mode, out[i], out[j]) })
	return out
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 12} {
		if _, err := New(n, decision.DWCS, PaperLogN); err == nil {
			t.Errorf("New accepted non-power-of-two slot count %d", n)
		}
	}
	if _, err := New(4, decision.DWCS, Schedule(9)); err == nil {
		t.Error("New accepted an unknown schedule")
	}
	nw, err := New(8, decision.TagOnly, Bitonic)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Slots() != 8 || nw.Schedule() != Bitonic {
		t.Errorf("Slots/Schedule = %d/%v", nw.Slots(), nw.Schedule())
	}
	if len(nw.DecisionBlocks()) != 4 {
		t.Errorf("a %d-slot network must have %d decision blocks, got %d", 8, 4, len(nw.DecisionBlocks()))
	}
}

func TestPassesPerCycle(t *testing.T) {
	cases := []struct {
		n        int
		schedule Schedule
		want     int
	}{
		{4, PaperLogN, 2}, {8, PaperLogN, 3}, {16, PaperLogN, 4}, {32, PaperLogN, 5},
		{4, Tournament, 2}, {32, Tournament, 5},
		{4, Bitonic, 3}, {8, Bitonic, 6}, {16, Bitonic, 10},
	}
	for _, c := range cases {
		nw, err := New(c.n, decision.DWCS, c.schedule)
		if err != nil {
			t.Fatal(err)
		}
		if got := nw.PassesPerCycle(); got != c.want {
			t.Errorf("N=%d %v: PassesPerCycle = %d, want %d", c.n, c.schedule, got, c.want)
		}
		// Run must report the same count.
		in := mkInputs(make([]uint16, c.n))
		if r := nw.Run(in); r.Passes != c.want {
			t.Errorf("N=%d %v: Run passes = %d, want %d", c.n, c.schedule, r.Passes, c.want)
		}
	}
}

// TestPaperDecisionTimeClaim pins the paper's §5.1 sentence: "2, 3, 4, 5
// cycles required to sort 4, 8, 16 and 32 stream-slots".
func TestPaperDecisionTimeClaim(t *testing.T) {
	want := map[int]int{4: 2, 8: 3, 16: 4, 32: 5}
	for n, cycles := range want {
		nw, _ := New(n, decision.DWCS, PaperLogN)
		if got := nw.PassesPerCycle(); got != cycles {
			t.Errorf("N=%d: %d cycles, paper says %d", n, got, cycles)
		}
	}
}

func TestWinnerSimple(t *testing.T) {
	nw, _ := New(4, decision.DWCS, PaperLogN)
	r := nw.Run(mkInputs([]uint16{7, 3, 9, 5}))
	if r.Winner.Slot != 1 {
		t.Fatalf("winner slot = %d, want 1 (deadline 3)", r.Winner.Slot)
	}
	if len(r.Block) != 4 {
		t.Fatalf("block length = %d, want 4", len(r.Block))
	}
	if r.Block[3].Slot != 2 {
		t.Fatalf("block tail slot = %d, want 2 (deadline 9, global max)", r.Block[3].Slot)
	}
}

func TestWinnerCorrectAllSchedules(t *testing.T) {
	// Property: for every schedule the winner equals the reference
	// minimum under the Decision ordering.
	rng := rand.New(rand.NewSource(1))
	for _, schedule := range []Schedule{PaperLogN, Bitonic, Tournament} {
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			nw, err := New(n, decision.DWCS, schedule)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 200; trial++ {
				in := make([]attr.Attributes, n)
				for i := range in {
					in[i] = attr.Attributes{
						Deadline: attr.Time16(rng.Intn(1 << 14)),
						LossNum:  uint8(rng.Intn(8)),
						LossDen:  uint8(rng.Intn(8)),
						Arrival:  attr.Time16(rng.Intn(1 << 14)),
						Slot:     attr.SlotID(i),
						Valid:    rng.Intn(8) != 0, // occasional empty slots
					}
				}
				want := refSorted(in, decision.DWCS)[0]
				got := nw.Run(in).Winner
				if got.Slot != want.Slot {
					t.Fatalf("%v N=%d trial %d: winner slot %d, want %d\nin=%v",
						schedule, n, trial, got.Slot, want.Slot, in)
				}
			}
		}
	}
}

func TestPaperLogNExtremesCorrect(t *testing.T) {
	// The paper schedule provably places the global max at the block tail
	// (needed for min-first circulation) in addition to the min at the head.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 8, 16, 32} {
		nw, _ := New(n, decision.DWCS, PaperLogN)
		for trial := 0; trial < 300; trial++ {
			deadlines := make([]uint16, n)
			for i := range deadlines {
				deadlines[i] = uint16(rng.Intn(1 << 14))
			}
			in := mkInputs(deadlines)
			ref := refSorted(in, decision.DWCS)
			r := nw.Run(in)
			if r.Block[0].Slot != ref[0].Slot {
				t.Fatalf("N=%d: head slot %d, want %d", n, r.Block[0].Slot, ref[0].Slot)
			}
			if r.Block[n-1].Slot != ref[n-1].Slot {
				t.Fatalf("N=%d: tail slot %d, want %d", n, r.Block[n-1].Slot, ref[n-1].Slot)
			}
		}
	}
}

func TestBitonicFullySorts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		nw, _ := New(n, decision.DWCS, Bitonic)
		for trial := 0; trial < 200; trial++ {
			in := make([]attr.Attributes, n)
			for i := range in {
				in[i] = attr.Attributes{
					Deadline: attr.Time16(rng.Intn(1 << 14)),
					LossNum:  uint8(rng.Intn(4)),
					LossDen:  uint8(rng.Intn(4)),
					Arrival:  attr.Time16(rng.Intn(1 << 14)),
					Slot:     attr.SlotID(i),
					Valid:    true,
				}
			}
			r := nw.Run(in)
			for i := 1; i < n; i++ {
				if decision.Less(decision.DWCS, r.Block[i], r.Block[i-1]) {
					t.Fatalf("N=%d trial %d: bitonic block not sorted at %d: %v before %v",
						n, trial, i, r.Block[i], r.Block[i-1])
				}
			}
		}
	}
}

func TestBlockIsPermutationOfInputs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		for _, schedule := range []Schedule{PaperLogN, Bitonic} {
			nw, _ := New(n, decision.DWCS, schedule)
			deadlines := make([]uint16, n)
			for i := range deadlines {
				deadlines[i] = uint16(rng.Intn(100))
			}
			r := nw.Run(mkInputs(deadlines))
			seen := make(map[attr.SlotID]bool, n)
			for _, a := range r.Block {
				if seen[a.Slot] {
					return false // duplicated a slot: attributes were cloned
				}
				seen[a.Slot] = true
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTournamentProducesNoBlock(t *testing.T) {
	nw, _ := New(4, decision.DWCS, Tournament)
	r := nw.Run(mkInputs([]uint16{4, 2, 3, 1}))
	if r.Block != nil {
		t.Fatal("winner-only routing must not produce a block")
	}
	if r.Winner.Slot != 3 {
		t.Fatalf("winner slot = %d, want 3", r.Winner.Slot)
	}
}

func TestCountersAccumulate(t *testing.T) {
	nw, _ := New(4, decision.DWCS, PaperLogN)
	in := mkInputs([]uint16{1, 2, 3, 4})
	nw.Run(in)
	nw.Run(in)
	if nw.Cycles != 2 {
		t.Errorf("Cycles = %d, want 2", nw.Cycles)
	}
	if nw.TotalPasses != 4 {
		t.Errorf("TotalPasses = %d, want 4", nw.TotalPasses)
	}
	// Each PaperLogN pass engages all N/2 blocks: 2 cycles * 2 passes * 2
	// blocks = 8 compares.
	if got := nw.Compares(); got != 8 {
		t.Errorf("Compares = %d, want 8", got)
	}
}

func TestRunPanicsOnWidthMismatch(t *testing.T) {
	nw, _ := New(4, decision.DWCS, PaperLogN)
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted a mis-wired input width")
		}
	}()
	nw.Run(make([]attr.Attributes, 3))
}

func TestBlockAliasingContract(t *testing.T) {
	// Result.Block aliases a reused internal buffer with copy-on-retain
	// semantics: contents are stable until the *next* Run, a copy taken
	// before then stays stable forever, and after the next Run the old
	// slice header observes the new cycle's block (same backing buffer, no
	// allocation).
	nw, _ := New(4, decision.DWCS, PaperLogN)
	r1 := nw.Run(mkInputs([]uint16{4, 3, 2, 1}))
	if r1.Block[0].Deadline != 1 {
		t.Fatalf("first block head deadline = %d, want 1", r1.Block[0].Deadline)
	}
	retained := append([]attr.Attributes(nil), r1.Block...)

	r2 := nw.Run(mkInputs([]uint16{9, 8, 7, 6}))
	if &r1.Block[0] != &r2.Block[0] {
		t.Fatal("Run allocated a fresh block instead of reusing the buffer")
	}
	if r1.Block[0].Deadline != 6 {
		t.Fatalf("after the next Run the aliased block shows deadline %d, want 6", r1.Block[0].Deadline)
	}
	for i, want := range []uint16{1, 2, 3, 4} {
		if uint16(retained[i].Deadline) != want {
			t.Fatalf("retained copy [%d] = %d, want %d (copy-on-retain broken)", i, retained[i].Deadline, want)
		}
	}
}

func TestScheduleString(t *testing.T) {
	if PaperLogN.String() != "paper-logn" || Bitonic.String() != "bitonic" ||
		Tournament.String() != "tournament" || Schedule(9).String() != "schedule(9)" {
		t.Error("Schedule.String misbehaved")
	}
}

func BenchmarkPaperLogN32(b *testing.B) {
	nw, _ := New(32, decision.DWCS, PaperLogN)
	rng := rand.New(rand.NewSource(4))
	deadlines := make([]uint16, 32)
	for i := range deadlines {
		deadlines[i] = uint16(rng.Intn(1 << 14))
	}
	in := mkInputs(deadlines)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Run(in)
	}
}

func BenchmarkTournament32(b *testing.B) {
	nw, _ := New(32, decision.DWCS, Tournament)
	rng := rand.New(rand.NewSource(5))
	deadlines := make([]uint16, 32)
	for i := range deadlines {
		deadlines[i] = uint16(rng.Intn(1 << 14))
	}
	in := mkInputs(deadlines)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Run(in)
	}
}
