package shuffle

// Structural network model: the recirculating shuffle-exchange built from
// clocked RegisteredBlocks on the hwsim kernel, one hardware clock per
// recirculation, with the steering muxes applying the perfect shuffle
// between the recirculation registers and the Decision-block inputs — the
// closest this reproduction gets to the RTL of Figure 4. The behavioral
// Network (which computes a pass combinationally) is pinned against this
// model in tests.

import (
	"fmt"
	"math/bits"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/hwsim"
)

// Structural is the clocked realization of the paper's log₂N-pass schedule.
type Structural struct {
	n      int
	blocks []*decision.RegisteredBlock
	clk    *hwsim.Clock

	// recirculation registers: the sorted-so-far attribute words.
	regs []hwsim.Reg[attr.Attributes]
}

// NewStructural builds an n-slot clocked network (n a power of two ≥ 2) in
// the given Decision-block mode.
func NewStructural(n int, mode decision.Mode) (*Structural, error) {
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("shuffle: slot count %d is not a power of two ≥ 2", n)
	}
	s := &Structural{
		n:      n,
		blocks: make([]*decision.RegisteredBlock, n/2),
		clk:    hwsim.NewClock(),
		regs:   make([]hwsim.Reg[attr.Attributes], n),
	}
	for i := range s.blocks {
		s.blocks[i] = &decision.RegisteredBlock{Mode: mode}
		// The blocks are stepped explicitly inside each pass (their
		// output registers latch on the same edge as the recirculation
		// registers), so only the recirculation registers attach to the
		// clock.
	}
	for i := range s.regs {
		s.clk.Attach(&s.regs[i])
	}
	return s, nil
}

// Clock exposes the underlying clock (cycle counts, tracing).
func (s *Structural) Clock() *hwsim.Clock { return s.clk }

// Run performs one decision cycle: the attribute words load into the
// recirculation registers, then log₂N clocked passes shuffle-exchange them;
// the sorted block is read from the registers. It returns the block and the
// clock cycles consumed.
func (s *Structural) Run(in []attr.Attributes) ([]attr.Attributes, int, error) {
	if len(in) != s.n {
		return nil, 0, fmt.Errorf("shuffle: %d inputs wired to a %d-slot structural network", len(in), s.n)
	}
	for i := range s.regs {
		s.regs[i].Reset(in[i])
	}
	k := bits.TrailingZeros(uint(s.n))
	start := s.clk.Cycle()
	for p := 0; p < k; p++ {
		// Steering muxes: drive block b with the shuffled register pair.
		for b := 0; b < s.n/2; b++ {
			s.blocks[b].Drive(s.regs[shuffleIndex(s.n, 2*b)].Get(), s.regs[shuffleIndex(s.n, 2*b+1)].Get())
		}
		// The blocks' comparators settle combinationally within the
		// pass and their output registers latch on the same edge as the
		// recirculation registers; step the blocks explicitly, then
		// stage the recirculation registers from the latched verdicts
		// and take the clock edge.
		for b := 0; b < s.n/2; b++ {
			s.blocks[b].Evaluate()
			s.blocks[b].Commit()
		}
		for b := 0; b < s.n/2; b++ {
			v := s.blocks[b].Out()
			s.regs[2*b].Set(v.Winner)
			s.regs[2*b+1].Set(v.Loser)
		}
		s.clk.Step() // recirculation registers latch; one clock per pass
	}
	out := make([]attr.Attributes, s.n)
	for i := range s.regs {
		out[i] = s.regs[i].Get()
	}
	return out, int(s.clk.Cycle() - start), nil
}

// shuffleIndex returns which recirculation register feeds Decision input
// position pos under the perfect-shuffle wiring: position 2i reads register
// i, position 2i+1 reads register i + N/2.
func shuffleIndex(n, pos int) int {
	if pos%2 == 0 {
		return pos / 2
	}
	return pos/2 + n/2
}
