package shuffle

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
)

func TestStructuralValidation(t *testing.T) {
	if _, err := NewStructural(3, decision.DWCS); err == nil {
		t.Error("accepted non-power-of-two")
	}
	s, err := NewStructural(4, decision.DWCS)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Run(make([]attr.Attributes, 3)); err == nil {
		t.Error("accepted mis-wired input width")
	}
}

// TestStructuralMatchesBehavioral pins the clocked RTL-style network
// against the behavioral per-pass model: identical blocks, cycle for cycle.
func TestStructuralMatchesBehavioral(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{2, 4, 8, 16, 32} {
		structural, err := NewStructural(n, decision.DWCS)
		if err != nil {
			t.Fatal(err)
		}
		behavioral, err := New(n, decision.DWCS, PaperLogN)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			in := make([]attr.Attributes, n)
			for i := range in {
				in[i] = attr.Attributes{
					Deadline: attr.Time16(rng.Intn(1 << 14)),
					LossNum:  uint8(rng.Intn(4)),
					LossDen:  uint8(rng.Intn(4)),
					Arrival:  attr.Time16(rng.Intn(1 << 14)),
					Slot:     attr.SlotID(i),
					Valid:    rng.Intn(6) != 0,
				}
			}
			gotBlock, cycles, err := structural.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			want := behavioral.Run(in)
			if cycles != want.Passes {
				t.Fatalf("N=%d: structural %d clocks vs behavioral %d passes", n, cycles, want.Passes)
			}
			for i := range gotBlock {
				if gotBlock[i].Slot != want.Block[i].Slot {
					t.Fatalf("N=%d trial %d: position %d structural slot %d vs behavioral %d",
						n, trial, i, gotBlock[i].Slot, want.Block[i].Slot)
				}
			}
		}
	}
}

// TestStructuralClockAdvances checks that repeated decision cycles keep the
// hardware clock monotonic (log₂N clocks each).
func TestStructuralClockAdvances(t *testing.T) {
	s, _ := NewStructural(8, decision.DWCS)
	in := make([]attr.Attributes, 8)
	for i := range in {
		in[i] = attr.Attributes{Deadline: attr.Time16(i), Slot: attr.SlotID(i), Valid: true}
	}
	for r := 1; r <= 5; r++ {
		_, cycles, err := s.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if cycles != 3 {
			t.Fatalf("run %d took %d clocks, want 3", r, cycles)
		}
		if s.Clock().Cycle() != uint64(3*r) {
			t.Fatalf("clock at %d after %d runs", s.Clock().Cycle(), r)
		}
	}
}
