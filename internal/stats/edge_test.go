package stats

// Edge-case guards for the measurement instruments: empty windows, single
// samples, records landing exactly on a window boundary, and degenerate
// SumSeries inputs. These paths feed every figure and the sharded
// aggregator, so off-by-one-window bugs here silently skew results.

import (
	"testing"
)

// TestMeterFinishOnlyEmitsOneEmptyWindow: a meter that saw no traffic still
// closes exactly one (zero) window on Finish, so downstream consumers see an
// aligned, all-zero series instead of a missing one.
func TestMeterFinishOnlyEmitsOneEmptyWindow(t *testing.T) {
	m, err := NewBandwidthMeter(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	m.Finish()
	for i := 0; i < 2; i++ {
		pts := m.Series(i)
		if len(pts) != 1 || pts[0].Y != 0 {
			t.Fatalf("stream %d series = %+v, want one zero window", i, pts)
		}
	}
	if m.MeanMBps(0) != 0 {
		t.Fatalf("mean over empty run = %v, want 0", m.MeanMBps(0))
	}
}

// TestMeterSingleSample: one record, one Finish — the sample lands in the
// first window with the exact MB/s conversion.
func TestMeterSingleSample(t *testing.T) {
	m, err := NewBandwidthMeter(1, 1e6) // 1 ms window
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Record(0, 500, 10); err != nil {
		t.Fatal(err)
	}
	m.Finish()
	pts := m.Series(0)
	if len(pts) != 1 {
		t.Fatalf("series = %+v, want exactly one window", pts)
	}
	// 500 bytes over 1 ms = 0.5 MB/s, window midpoint at 0.5 ms = 5e-4 s.
	if pts[0].Y != 0.5 || pts[0].X != 5e-4 {
		t.Fatalf("point = %+v, want {X: 5e-4, Y: 0.5}", pts[0])
	}
	if got := m.MeanMBps(0); got != 0.5 {
		t.Fatalf("mean = %v, want 0.5", got)
	}
}

// TestMeterRecordExactlyAtBoundary: a record at atNs == windowNs must close
// the first window and land in the second — the window interval is
// half-open [start, start+window).
func TestMeterRecordExactlyAtBoundary(t *testing.T) {
	m, err := NewBandwidthMeter(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Record(0, 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Record(0, 300, 1000); err != nil { // exactly the boundary
		t.Fatal(err)
	}
	m.Finish()
	pts := m.Series(0)
	if len(pts) != 2 {
		t.Fatalf("series = %+v, want two windows", pts)
	}
	// 100 bytes / 1000 ns = 100 MB/s; 300 bytes / 1000 ns = 300 MB/s.
	if pts[0].Y != 100 || pts[1].Y != 300 {
		t.Fatalf("windows = %v/%v MB/s, want 100/300 (boundary sample in window 2)", pts[0].Y, pts[1].Y)
	}
}

// TestMeterMultiWindowSkip: a long silent gap emits one zero point per
// skipped window, keeping series index-aligned across streams and shards.
func TestMeterMultiWindowSkip(t *testing.T) {
	m, err := NewBandwidthMeter(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Record(0, 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Record(0, 100, 4500); err != nil { // windows 1..3 silent
		t.Fatal(err)
	}
	m.Finish()
	pts := m.Series(0)
	if len(pts) != 5 {
		t.Fatalf("series = %+v, want 5 windows", pts)
	}
	for w := 1; w <= 3; w++ {
		if pts[w].Y != 0 {
			t.Fatalf("window %d = %v, want 0 (silent)", w, pts[w].Y)
		}
	}
	if pts[4].Y == 0 {
		t.Fatal("final window lost the late sample")
	}
}

// TestSumSeriesEdges: no input, all-empty input, mismatched lengths, and X
// inheritance from the first series that has the row.
func TestSumSeriesEdges(t *testing.T) {
	if got := SumSeries(); len(got) != 0 {
		t.Fatalf("SumSeries() = %+v, want empty", got)
	}
	if got := SumSeries(nil, []Point{}); len(got) != 0 {
		t.Fatalf("SumSeries(nil, empty) = %+v, want empty", got)
	}
	long := []Point{{X: 1, Y: 10}, {X: 2, Y: 20}, {X: 3, Y: 30}}
	short := []Point{{X: 1, Y: 1}}
	got := SumSeries(short, long)
	want := []Point{{X: 1, Y: 11}, {X: 2, Y: 20}, {X: 3, Y: 30}}
	if len(got) != len(want) {
		t.Fatalf("sum = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// A single series sums to itself.
	same := SumSeries(long)
	for i := range long {
		if same[i] != long[i] {
			t.Fatalf("identity sum[%d] = %+v, want %+v", i, same[i], long[i])
		}
	}
}

// TestPercentileSingleSample: every percentile of a one-point series is that
// point, and out-of-range p clamps instead of indexing out of bounds.
func TestPercentileSingleSample(t *testing.T) {
	d, err := NewDelayRecorder(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Record(0, 0, 7e6); err != nil { // 7 ms
		t.Fatal(err)
	}
	for _, p := range []float64{-5, 0, 50, 100, 250} {
		if got := d.Percentile(0, p); got != 7 {
			t.Fatalf("p%v = %v, want 7", p, got)
		}
	}
	if d.Jitter(0) != 0 {
		t.Fatalf("single-sample jitter = %v, want 0", d.Jitter(0))
	}
}

// TestWriteCSVEmptySeries: zero-length series still produce a header and no
// NaN panics; mismatched label counts fail.
func TestWriteCSVEmptySeries(t *testing.T) {
	var b mockWriter
	if err := WriteCSV(&b, "x", []string{"a"}, [][]Point{{}}); err != nil {
		t.Fatal(err)
	}
	if string(b) != "x,a\n" {
		t.Fatalf("csv = %q, want header only", string(b))
	}
	if err := WriteCSV(&b, "x", []string{"a", "b"}, [][]Point{{}}); err == nil {
		t.Fatal("mismatched labels must fail")
	}
}

type mockWriter []byte

func (w *mockWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
