// Package stats provides the measurement instruments behind the paper's
// figures: windowed per-stream bandwidth series (Figures 8 and 10),
// per-packet queuing-delay series (Figure 9), and CSV export so the bench
// harness can dump plot-ready data.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one sample of a time series.
type Point struct {
	X float64 // time (seconds) or packet index
	Y float64 // measured value (MB/s, ms, …)
}

// BandwidthMeter accumulates per-stream byte counts into fixed windows and
// emits MB/s series — the instrument behind "we report the output bandwidth
// of streams".
type BandwidthMeter struct {
	windowNs float64
	cur      []float64 // bytes in the open window, per stream
	start    float64   // open window start (ns)
	series   [][]Point
}

// NewBandwidthMeter builds a meter for streams streams with the given
// averaging window.
func NewBandwidthMeter(streams int, windowNs float64) (*BandwidthMeter, error) {
	if streams < 1 {
		return nil, fmt.Errorf("stats: %d streams", streams)
	}
	if windowNs <= 0 {
		return nil, fmt.Errorf("stats: window %v ns", windowNs)
	}
	return &BandwidthMeter{
		windowNs: windowNs,
		cur:      make([]float64, streams),
		series:   make([][]Point, streams),
	}, nil
}

// Record accounts bytes transmitted for stream at virtual time atNs.
// Samples must arrive in non-decreasing time order.
func (m *BandwidthMeter) Record(stream, bytes int, atNs float64) error {
	if stream < 0 || stream >= len(m.cur) {
		return fmt.Errorf("stats: stream %d out of range", stream)
	}
	for atNs >= m.start+m.windowNs {
		m.flush()
	}
	m.cur[stream] += float64(bytes)
	return nil
}

// flush closes the open window, appending one point per stream.
func (m *BandwidthMeter) flush() {
	mid := (m.start + m.windowNs/2) / 1e9
	for i := range m.cur {
		mbps := m.cur[i] / m.windowNs * 1e9 / 1e6
		m.series[i] = append(m.series[i], Point{X: mid, Y: mbps})
		m.cur[i] = 0
	}
	m.start += m.windowNs
}

// Finish closes the final partial window.
func (m *BandwidthMeter) Finish() { m.flush() }

// Series returns stream i's bandwidth points (window midpoints, MB/s).
func (m *BandwidthMeter) Series(i int) []Point { return m.series[i] }

// MeanMBps returns stream i's mean bandwidth across all closed windows.
func (m *BandwidthMeter) MeanMBps(i int) float64 {
	pts := m.series[i]
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += p.Y
	}
	return sum / float64(len(pts))
}

// DelayRecorder collects per-packet queuing delays per stream — the
// instrument behind Figure 9.
type DelayRecorder struct {
	series [][]Point
}

// NewDelayRecorder builds a recorder for streams streams.
func NewDelayRecorder(streams int) (*DelayRecorder, error) {
	if streams < 1 {
		return nil, fmt.Errorf("stats: %d streams", streams)
	}
	return &DelayRecorder{series: make([][]Point, streams)}, nil
}

// Record logs packet packetIndex of stream with the given queuing delay.
func (d *DelayRecorder) Record(stream int, packetIndex uint64, delayNs float64) error {
	if stream < 0 || stream >= len(d.series) {
		return fmt.Errorf("stats: stream %d out of range", stream)
	}
	d.series[stream] = append(d.series[stream], Point{X: float64(packetIndex), Y: delayNs / 1e6})
	return nil
}

// Series returns stream i's (packet index, delay ms) points.
func (d *DelayRecorder) Series(i int) []Point { return d.series[i] }

// Mean returns stream i's mean delay in milliseconds.
func (d *DelayRecorder) Mean(i int) float64 {
	pts := d.series[i]
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += p.Y
	}
	return sum / float64(len(pts))
}

// Percentile returns stream i's p-th percentile delay (ms), p in [0, 100].
func (d *DelayRecorder) Percentile(i int, p float64) float64 {
	pts := d.series[i]
	if len(pts) == 0 {
		return 0
	}
	ys := make([]float64, len(pts))
	for k, pt := range pts {
		ys[k] = pt.Y
	}
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(ys) {
		return ys[len(ys)-1]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Max returns stream i's maximum delay (ms).
func (d *DelayRecorder) Max(i int) float64 {
	var mx float64
	for _, p := range d.series[i] {
		if p.Y > mx {
			mx = p.Y
		}
	}
	return mx
}

// Jitter returns stream i's delay jitter in milliseconds — the mean
// absolute difference between consecutive packets' queuing delays (the
// RFC 3550-style instantaneous jitter averaged over the run). Bandwidth,
// delay and delay-jitter are the three QoS bounds the ShareStreams
// framework provisions.
func (d *DelayRecorder) Jitter(i int) float64 {
	pts := d.series[i]
	if len(pts) < 2 {
		return 0
	}
	var sum float64
	for k := 1; k < len(pts); k++ {
		diff := pts[k].Y - pts[k-1].Y
		if diff < 0 {
			diff = -diff
		}
		sum += diff
	}
	return sum / float64(len(pts)-1)
}

// WriteCSV renders labeled series side by side: the first column is X (taken
// from the longest series), then one column per series (empty cells where a
// series is shorter).
func WriteCSV(w io.Writer, xLabel string, labels []string, series [][]Point) error {
	if len(labels) != len(series) {
		return fmt.Errorf("stats: %d labels for %d series", len(labels), len(series))
	}
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	var b strings.Builder
	b.WriteString(xLabel)
	for _, l := range labels {
		b.WriteByte(',')
		b.WriteString(l)
	}
	b.WriteByte('\n')
	for row := 0; row < maxLen; row++ {
		x := math.NaN()
		for _, s := range series {
			if row < len(s) {
				x = s[row].X
				break
			}
		}
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			b.WriteByte(',')
			if row < len(s) {
				fmt.Fprintf(&b, "%g", s[row].Y)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SumSeries merges several window-aligned series into one by summing the
// Y values at each window index — the aggregator that folds per-shard
// bandwidth series into a single endsystem view. The X coordinates are
// taken from the first series that has the row; shorter series contribute
// zero beyond their end. Series produced by BandwidthMeters with the same
// window size align by construction.
func SumSeries(series ...[]Point) []Point {
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	out := make([]Point, maxLen)
	for row := 0; row < maxLen; row++ {
		haveX := false
		for _, s := range series {
			if row >= len(s) {
				continue
			}
			if !haveX {
				out[row].X = s[row].X
				haveX = true
			}
			out[row].Y += s[row].Y
		}
	}
	return out
}

// Downsample keeps every k-th point of a series (k ≥ 1), for readable CSV
// dumps of 64000-packet runs.
func Downsample(pts []Point, k int) []Point {
	if k <= 1 {
		return pts
	}
	out := make([]Point, 0, len(pts)/k+1)
	for i := 0; i < len(pts); i += k {
		out = append(out, pts[i])
	}
	return out
}
