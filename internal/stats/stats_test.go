package stats

import (
	"math"
	"strings"
	"testing"
)

func TestBandwidthMeterValidation(t *testing.T) {
	if _, err := NewBandwidthMeter(0, 1e6); err == nil {
		t.Error("accepted zero streams")
	}
	if _, err := NewBandwidthMeter(1, 0); err == nil {
		t.Error("accepted zero window")
	}
	m, _ := NewBandwidthMeter(2, 1e6)
	if err := m.Record(5, 1, 0); err == nil {
		t.Error("accepted out-of-range stream")
	}
}

func TestBandwidthWindows(t *testing.T) {
	// 1 ms windows; stream 0 sends 1000 B per 0.5 ms -> 2 MB/s.
	m, _ := NewBandwidthMeter(2, 1e6)
	for i := 0; i < 10; i++ {
		if err := m.Record(0, 1000, float64(i)*0.5e6); err != nil {
			t.Fatal(err)
		}
	}
	m.Finish()
	pts := m.Series(0)
	if len(pts) < 4 {
		t.Fatalf("only %d windows", len(pts))
	}
	for i, p := range pts[:4] {
		if math.Abs(p.Y-2.0) > 1e-9 {
			t.Fatalf("window %d = %v MB/s, want 2", i, p.Y)
		}
	}
	// Stream 1 sent nothing: all zero.
	for _, p := range m.Series(1) {
		if p.Y != 0 {
			t.Fatalf("idle stream shows %v MB/s", p.Y)
		}
	}
	if math.Abs(m.MeanMBps(1)) > 1e-12 {
		t.Fatalf("idle mean = %v", m.MeanMBps(1))
	}
}

func TestBandwidthGapsProduceZeroWindows(t *testing.T) {
	m, _ := NewBandwidthMeter(1, 1e6)
	m.Record(0, 500, 0)
	m.Record(0, 500, 5.2e6) // 5 ms gap
	m.Finish()
	pts := m.Series(0)
	if len(pts) != 6 {
		t.Fatalf("windows = %d, want 6", len(pts))
	}
	for i := 1; i <= 4; i++ {
		if pts[i].Y != 0 {
			t.Fatalf("gap window %d = %v", i, pts[i].Y)
		}
	}
	if pts[5].Y == 0 || pts[0].Y == 0 {
		t.Fatal("bracketing windows lost their bytes")
	}
}

func TestMeanMBps(t *testing.T) {
	m, _ := NewBandwidthMeter(1, 1e6)
	m.Record(0, 1000, 0.1e6)
	m.Record(0, 3000, 1.1e6)
	m.Finish()
	if got := m.MeanMBps(0); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("mean = %v, want 2", got)
	}
}

func TestDelayRecorder(t *testing.T) {
	if _, err := NewDelayRecorder(0); err == nil {
		t.Error("accepted zero streams")
	}
	d, _ := NewDelayRecorder(2)
	if err := d.Record(7, 0, 1); err == nil {
		t.Error("accepted out-of-range stream")
	}
	delays := []float64{1e6, 3e6, 2e6, 10e6} // ns -> 1,3,2,10 ms
	for i, ns := range delays {
		if err := d.Record(0, uint64(i), ns); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Mean(0); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("mean = %v ms, want 4", got)
	}
	if got := d.Max(0); math.Abs(got-10.0) > 1e-9 {
		t.Fatalf("max = %v ms, want 10", got)
	}
	if got := d.Percentile(0, 0); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := d.Percentile(0, 100); math.Abs(got-10.0) > 1e-9 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	if got := d.Percentile(0, 50); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 2.5 (interpolated)", got)
	}
	if d.Mean(1) != 0 || d.Max(1) != 0 || d.Percentile(1, 50) != 0 {
		t.Fatal("empty stream stats nonzero")
	}
	if len(d.Series(0)) != 4 {
		t.Fatalf("series length %d", len(d.Series(0)))
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	s1 := []Point{{X: 0, Y: 1}, {X: 1, Y: 2}}
	s2 := []Point{{X: 0, Y: 5}}
	if err := WriteCSV(&sb, "t", []string{"a", "b"}, [][]Point{s1, s2}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if lines[0] != "t,a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "0,1,5" {
		t.Fatalf("row 1 %q", lines[1])
	}
	if lines[2] != "1,2," {
		t.Fatalf("row 2 %q (short series must leave an empty cell)", lines[2])
	}
	if err := WriteCSV(&sb, "t", []string{"a"}, [][]Point{s1, s2}); err == nil {
		t.Error("accepted mismatched labels")
	}
}

func TestDownsample(t *testing.T) {
	pts := make([]Point, 10)
	for i := range pts {
		pts[i] = Point{X: float64(i)}
	}
	out := Downsample(pts, 3)
	if len(out) != 4 || out[1].X != 3 || out[3].X != 9 {
		t.Fatalf("downsampled = %v", out)
	}
	if got := Downsample(pts, 1); len(got) != 10 {
		t.Fatal("k=1 must keep everything")
	}
}

func TestJitter(t *testing.T) {
	d, _ := NewDelayRecorder(2)
	// Delays 1, 3, 2, 6 ms -> diffs 2, 1, 4 -> mean 7/3.
	for i, ms := range []float64{1, 3, 2, 6} {
		if err := d.Record(0, uint64(i), ms*1e6); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Jitter(0); math.Abs(got-7.0/3) > 1e-9 {
		t.Fatalf("jitter = %v, want %v", got, 7.0/3)
	}
	if d.Jitter(1) != 0 {
		t.Fatal("empty stream jitter nonzero")
	}
	d.Record(1, 0, 5e6)
	if d.Jitter(1) != 0 {
		t.Fatal("single-packet jitter nonzero")
	}
}

func TestSumSeries(t *testing.T) {
	a := []Point{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 5, Y: 6}}
	b := []Point{{X: 1, Y: 10}, {X: 3, Y: 20}}
	got := SumSeries(a, b)
	want := []Point{{X: 1, Y: 12}, {X: 3, Y: 24}, {X: 5, Y: 6}}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if out := SumSeries(); len(out) != 0 {
		t.Errorf("empty merge = %v", out)
	}
	if out := SumSeries(nil, a); len(out) != 3 || out[0] != a[0] {
		t.Errorf("nil + a = %v", out)
	}
}
