package streamlet

import (
	"fmt"

	"repro/internal/obs"
)

// Fairness returns Jain's fairness index over the aggregator's streamlets,
// with each streamlet's Served count normalized by its configured share
// (set weight split evenly across the set's members, the WRR + round-robin
// ideal). 1.0 means every streamlet received exactly its weighted share;
// the index falls toward 1/n as service concentrates on one streamlet. An
// aggregator that has served nothing reports 1.0 (vacuously fair).
func (a *Aggregator) Fairness() float64 {
	var sum, sumSq float64
	var n int
	for _, s := range a.sets {
		share := float64(s.weight) / float64(len(s.streamlets))
		for _, sl := range s.streamlets {
			x := float64(sl.Served) / share
			sum += x
			sumSq += x * x
			n++
		}
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// RegisterMetrics publishes the aggregator's round-robin service view on reg
// under prefix: prefix.served (packets handed to the slot across all sets),
// prefix.streamlets (member count), and prefix.fairness (the weighted Jain
// index above). The underlying counts are plain fields advanced by the
// scheduler loop, so per the obs sampling discipline scrape them quiesced or
// accept an in-flight approximation.
func (a *Aggregator) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".served", "packets", func() float64 { return float64(a.Served) })
	reg.GaugeFunc(prefix+".streamlets", "streamlets", func() float64 {
		var n int
		for _, s := range a.sets {
			n += len(s.streamlets)
		}
		return float64(n)
	})
	reg.GaugeFunc(prefix+".fairness", "index", a.Fairness)
	for i, s := range a.sets {
		set := s
		reg.GaugeFunc(fmt.Sprintf("%s.set%d.served", prefix, i), "packets", func() float64 {
			var n uint64
			for _, sl := range set.streamlets {
				n += sl.Served
			}
			return float64(n)
		})
	}
}
