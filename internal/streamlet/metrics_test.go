package streamlet

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/regblock"
	"repro/internal/traffic"
)

func TestFairness(t *testing.T) {
	// Fresh aggregator: vacuously fair.
	a, err := New(mustSet(t, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if f := a.Fairness(); f != 1 {
		t.Fatalf("empty fairness = %v, want 1", f)
	}
	// Round robin over backlogged equals: exactly fair after any multiple of
	// the set size.
	for i := 0; i < 3*100; i++ {
		if _, ok := a.NextHead(); !ok {
			t.Fatal("backlogged set ran dry")
		}
	}
	if f := a.Fairness(); f != 1 {
		t.Fatalf("RR fairness = %v, want 1", f)
	}

	// Weighted sets: 2:1 weights with one streamlet each — weight
	// normalization keeps perfect WRR at index 1.
	b, err := New(mustSet(t, 2, 1), mustSet(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, ok := b.NextHead(); !ok {
			t.Fatal("backlogged sets ran dry")
		}
	}
	if f := b.Fairness(); f < 0.999 || f > 1 {
		t.Fatalf("weighted fairness = %v, want ≈1", f)
	}

	// Skew: one of two equal-share streamlets is idle, so all service lands
	// on the other — Jain's index drops to 1/2.
	idle := &traffic.Periodic{Gap: 1, Phase: 1 << 40} // nothing before the far future
	busy := &traffic.Periodic{Gap: 1, Backlogged: true}
	set, err := NewSet(1, []regblock.HeadSource{busy, idle})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, ok := c.NextHead(); !ok {
			t.Fatal("busy streamlet ran dry")
		}
	}
	if f := c.Fairness(); f != 0.5 {
		t.Fatalf("skewed fairness = %v, want 0.5", f)
	}
}

func TestRegisterMetrics(t *testing.T) {
	a, err := New(mustSet(t, 2, 2), mustSet(t, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	a.RegisterMetrics(reg, "streamlet")
	for i := 0; i < 30; i++ {
		a.NextHead()
	}
	byName := map[string]float64{}
	for _, m := range reg.Snapshot().Metrics {
		byName[m.Name] = m.Value
	}
	if byName["streamlet.served"] != 30 {
		t.Fatalf("served = %v, want 30", byName["streamlet.served"])
	}
	if byName["streamlet.streamlets"] != 3 {
		t.Fatalf("streamlets = %v, want 3", byName["streamlet.streamlets"])
	}
	if f := byName["streamlet.fairness"]; f <= 0 || f > 1 {
		t.Fatalf("fairness = %v, want (0, 1]", f)
	}
	// 2:1 WRR over 30 packets: set 0 gets 20, set 1 gets 10.
	if byName["streamlet.set0.served"] != 20 || byName["streamlet.set1.served"] != 10 {
		t.Fatalf("per-set served = %v / %v, want 20 / 10",
			byName["streamlet.set0.served"], byName["streamlet.set1.served"])
	}
}

// mustSet builds a weight-w set of n backlogged streamlets.
func mustSet(t *testing.T, w, n int) *Set {
	t.Helper()
	srcs := make([]regblock.HeadSource, n)
	for i := range srcs {
		srcs[i] = &traffic.Periodic{Gap: 1, Backlogged: true}
	}
	s, err := NewSet(w, srcs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
