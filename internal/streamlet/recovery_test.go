package streamlet

import (
	"testing"

	"repro/internal/regblock"
)

func TestBacklogServesInOrder(t *testing.T) {
	b := NewBacklog([]regblock.Head{{Arrival: 1}, {Arrival: 2}})
	b.Push(regblock.Head{Arrival: 3})
	if b.Remaining() != 3 {
		t.Fatalf("remaining %d, want 3", b.Remaining())
	}
	for want := uint64(1); want <= 3; want++ {
		h, ok := b.NextHead()
		if !ok || h.Arrival != want {
			t.Fatalf("head %v/%v, want arrival %d", h, ok, want)
		}
	}
	if _, ok := b.NextHead(); ok {
		t.Fatal("exhausted backlog still served")
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining %d after drain", b.Remaining())
	}
}

func TestBacklogUnget(t *testing.T) {
	b := NewBacklog([]regblock.Head{{Arrival: 1}, {Arrival: 2}})
	h, _ := b.NextHead()
	b.Unget(h) // in-place undo: slot freed by the dequeue is reused
	if b.Remaining() != 2 {
		t.Fatalf("remaining %d, want 2", b.Remaining())
	}
	if got, _ := b.NextHead(); got.Arrival != 1 {
		t.Fatalf("unget lost ordering: got arrival %d", got.Arrival)
	}

	// Unget onto a fresh backlog (nothing dequeued yet) must prepend.
	b2 := NewBacklog([]regblock.Head{{Arrival: 5}})
	b2.Unget(regblock.Head{Arrival: 4})
	if got, _ := b2.NextHead(); got.Arrival != 4 {
		t.Fatalf("prepend unget lost ordering: got arrival %d", got.Arrival)
	}
}

func TestDiscardPendingRollsBackService(t *testing.T) {
	set, err := NewSet(1, []regblock.HeadSource{
		NewBacklog([]regblock.Head{{Arrival: 1}, {Arrival: 3}}),
		NewBacklog([]regblock.Head{{Arrival: 2}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := a.NextHead(); !ok {
			t.Fatalf("head %d missing", i)
		}
	}
	if _, _, err := a.OnTransmit(64); err != nil {
		t.Fatal(err)
	}
	if a.Pending() != 2 {
		t.Fatalf("pending %d, want 2", a.Pending())
	}
	var undone []int
	n := a.DiscardPending(func(set, sl int) { undone = append(undone, sl) })
	if n != 2 || a.Pending() != 0 {
		t.Fatalf("discarded %d (pending %d), want 2/0", n, a.Pending())
	}
	// Heads were dequeued RR: streamlet 0 (arr 1), 1 (arr 2), 0 (arr 3); the
	// first was transmitted, so the abandoned ones came from 1 then 0.
	if len(undone) != 2 || undone[0] != 1 || undone[1] != 0 {
		t.Fatalf("undo providers %v, want [1 0]", undone)
	}
	if a.Served != 1 {
		t.Fatalf("aggregate Served %d after rollback, want 1", a.Served)
	}
	if s0, s1 := set.Streamlet(0).Served, set.Streamlet(1).Served; s0 != 1 || s1 != 0 {
		t.Fatalf("streamlet Served %d/%d after rollback, want 1/0", s0, s1)
	}
	// A transmit after the discard has no outstanding head to charge.
	if _, _, err := a.OnTransmit(64); err == nil {
		t.Fatal("transmit after discard must fail")
	}
}
