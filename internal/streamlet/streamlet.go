// Package streamlet implements stream aggregation (§4.3, §5.1, Figure 10):
// binding many *streamlets* to a single Register Base block when only
// aggregate QoS is required, trading per-stream FPGA state for cheap
// processor memory.
//
// The Stream processor services streamlets with the round-robin policy the
// paper uses ("we simply used a round-robin service policy on the Stream
// processor between streamlets … by cycling through active queues"), and
// supports multiple weighted *sets* of streamlets within one stream-slot
// ("we were even able to support multiple sets of streamlets within a
// stream-slot" — Figure 10's slot 4 carries two sets, set 1 with double the
// bandwidth of set 2) via weighted round robin across sets.
//
// An Aggregator implements regblock.HeadSource, so a stream-slot drains it
// exactly like a single stream; the slot's QoS (deadlines, window
// constraints) applies to the aggregate.
package streamlet

import (
	"fmt"

	"repro/internal/regblock"
)

// Streamlet is one aggregated sub-stream: its own packet source plus
// service accounting.
type Streamlet struct {
	src regblock.HeadSource

	// Served counts packets handed to the stream-slot; Bytes counts
	// transmitted bytes (charged by OnTransmit).
	Served uint64
	Bytes  uint64
}

// Set is a weighted group of streamlets within one stream-slot. During each
// weighted-round-robin turn the set hands out Weight packets (across its
// streamlets, plain round robin) before the next set's turn.
type Set struct {
	weight     int
	streamlets []*Streamlet
	cursor     int
}

// NewSet builds a set with the given weight over the given sources.
func NewSet(weight int, sources []regblock.HeadSource) (*Set, error) {
	if weight < 1 {
		return nil, fmt.Errorf("streamlet: set weight %d", weight)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("streamlet: empty set")
	}
	s := &Set{weight: weight}
	for _, src := range sources {
		if src == nil {
			return nil, fmt.Errorf("streamlet: nil source")
		}
		s.streamlets = append(s.streamlets, &Streamlet{src: src})
	}
	return s, nil
}

// Weight returns the set's WRR weight.
func (s *Set) Weight() int { return s.weight }

// Size returns the number of streamlets in the set.
func (s *Set) Size() int { return len(s.streamlets) }

// Streamlet returns streamlet i's accounting.
func (s *Set) Streamlet(i int) *Streamlet { return s.streamlets[i] }

// next round-robins within the set, returning the index of the first
// streamlet (starting at the cursor) with a packet available.
func (s *Set) next() (int, regblock.Head, bool) {
	for k := 0; k < len(s.streamlets); k++ {
		i := (s.cursor + k) % len(s.streamlets)
		if h, ok := s.streamlets[i].src.NextHead(); ok {
			s.cursor = (i + 1) % len(s.streamlets)
			s.streamlets[i].Served++
			return i, h, true
		}
	}
	return 0, regblock.Head{}, false
}

// provider identifies which streamlet supplied a head, for transmit-time
// byte accounting.
type provider struct {
	set, streamlet int
}

// Aggregator merges streamlet sets into a single head stream for one
// stream-slot.
type Aggregator struct {
	sets []*Set

	// WRR state: current set and remaining credit in its turn.
	setCursor int
	credit    int

	// pending maps dequeued heads (in order) to their providers so
	// OnTransmit charges the right streamlet.
	pending []provider

	// Served counts packets handed to the slot across all sets.
	Served uint64
}

// New builds an aggregator over one or more weighted sets.
func New(sets ...*Set) (*Aggregator, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("streamlet: no sets")
	}
	for _, s := range sets {
		if s == nil {
			return nil, fmt.Errorf("streamlet: nil set")
		}
	}
	a := &Aggregator{sets: sets}
	a.credit = sets[0].weight
	return a, nil
}

// Sets returns the aggregator's set count.
func (a *Aggregator) Sets() int { return len(a.sets) }

// Set returns set i.
func (a *Aggregator) Set(i int) *Set { return a.sets[i] }

// NextHead implements regblock.HeadSource: weighted round robin across
// sets, plain round robin within the chosen set. A set's turn ends when its
// credit is spent or it has nothing to send; after a full rotation with no
// head the aggregate is empty.
func (a *Aggregator) NextHead() (regblock.Head, bool) {
	for tried := 0; tried <= len(a.sets); tried++ {
		set := a.sets[a.setCursor]
		if a.credit > 0 {
			if i, h, ok := set.next(); ok {
				a.credit--
				a.pending = append(a.pending, provider{set: a.setCursor, streamlet: i})
				a.Served++
				return h, true
			}
		}
		// Turn over: move to the next set with fresh credit.
		a.setCursor = (a.setCursor + 1) % len(a.sets)
		a.credit = a.sets[a.setCursor].weight
	}
	return regblock.Head{}, false
}

// Advance implements core.TimedSource by forwarding the clock to every
// streamlet source that is time-gated.
func (a *Aggregator) Advance(now uint64) {
	type timed interface{ Advance(uint64) }
	for _, s := range a.sets {
		for _, sl := range s.streamlets {
			if ts, ok := sl.src.(timed); ok {
				ts.Advance(now)
			}
		}
	}
}

// OnTransmit charges bytes transmitted from this slot to the streamlet that
// supplied the oldest outstanding head (heads are consumed by the slot in
// FIFO order). It returns the (set, streamlet) charged.
func (a *Aggregator) OnTransmit(bytes int) (set, sl int, err error) {
	if len(a.pending) == 0 {
		return 0, 0, fmt.Errorf("streamlet: transmit with no outstanding head")
	}
	p := a.pending[0]
	a.pending = a.pending[1:]
	a.sets[p.set].streamlets[p.streamlet].Bytes += uint64(bytes)
	return p.set, p.streamlet, nil
}

// Pending returns how many dequeued heads await their OnTransmit charge.
func (a *Aggregator) Pending() int { return len(a.pending) }

// DiscardPending abandons every dequeued-but-untransmitted head — the
// recovery path when the stream-slot draining this aggregator is flushed
// (rebind, crash) and its in-flight heads will never transmit. Each
// provider's Served count (and the aggregate's) is rolled back so a caller
// that re-submits the abandoned frames does not double-count service; undo,
// when non-nil, is called once per abandoned head in FIFO dequeue order with
// the providing (set, streamlet), letting the caller restore provenance. It
// returns the number of heads discarded.
func (a *Aggregator) DiscardPending(undo func(set, streamlet int)) int {
	n := len(a.pending)
	for _, p := range a.pending {
		a.sets[p.set].streamlets[p.streamlet].Served--
		a.Served--
		if undo != nil {
			undo(p.set, p.streamlet)
		}
	}
	a.pending = a.pending[:0]
	return n
}

// Backlog is a HeadSource over an in-memory queue of heads — "processor
// memory" in the paper's aggregation trade. The supervisor uses it to
// re-home a dead shard's salvaged frames: the drained backlog becomes one
// streamlet bound (with the survivors) to a living stream-slot.
type Backlog struct {
	heads []regblock.Head
	next  int
}

// NewBacklog builds a backlog over the given heads, served in order.
func NewBacklog(heads []regblock.Head) *Backlog {
	return &Backlog{heads: heads}
}

// Push appends a head to the backlog.
func (b *Backlog) Push(h regblock.Head) { b.heads = append(b.heads, h) }

// Unget returns a head to the front of the backlog (the undo for a dequeue
// whose consumer abandoned it).
func (b *Backlog) Unget(h regblock.Head) {
	if b.next > 0 {
		b.next--
		b.heads[b.next] = h
		return
	}
	b.heads = append([]regblock.Head{h}, b.heads...)
}

// Remaining returns how many heads are still queued.
func (b *Backlog) Remaining() int { return len(b.heads) - b.next }

// NextHead implements regblock.HeadSource.
func (b *Backlog) NextHead() (regblock.Head, bool) {
	if b.next >= len(b.heads) {
		return regblock.Head{}, false
	}
	h := b.heads[b.next]
	b.next++
	return h, true
}
