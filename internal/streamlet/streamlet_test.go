package streamlet

import (
	"testing"

	"repro/internal/regblock"
	"repro/internal/traffic"
)

func backlogged(n int) []regblock.HeadSource {
	srcs := make([]regblock.HeadSource, n)
	for i := range srcs {
		srcs[i] = &traffic.Periodic{Gap: 1, Backlogged: true}
	}
	return srcs
}

func TestValidation(t *testing.T) {
	if _, err := NewSet(0, backlogged(1)); err == nil {
		t.Error("accepted zero weight")
	}
	if _, err := NewSet(1, nil); err == nil {
		t.Error("accepted empty set")
	}
	if _, err := NewSet(1, []regblock.HeadSource{nil}); err == nil {
		t.Error("accepted nil source")
	}
	if _, err := New(); err == nil {
		t.Error("accepted no sets")
	}
	if _, err := New(nil); err == nil {
		t.Error("accepted nil set")
	}
}

func TestRoundRobinWithinSet(t *testing.T) {
	set, err := NewSet(1, backlogged(3))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	// 9 dequeues must hit each streamlet exactly 3 times, in rotation.
	for k := 0; k < 9; k++ {
		if _, ok := agg.NextHead(); !ok {
			t.Fatalf("dequeue %d failed", k)
		}
	}
	for i := 0; i < 3; i++ {
		if got := set.Streamlet(i).Served; got != 3 {
			t.Errorf("streamlet %d served %d, want 3", i, got)
		}
	}
	if agg.Served != 9 {
		t.Errorf("aggregate served %d", agg.Served)
	}
}

func TestWeightedSets(t *testing.T) {
	// Two sets with weights 2:1 — Figure 10's slot 4. Over many turns,
	// set 1 gets two packets for each of set 2's.
	s1, _ := NewSet(2, backlogged(2))
	s2, _ := NewSet(1, backlogged(2))
	agg, err := New(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3000; k++ {
		if _, ok := agg.NextHead(); !ok {
			t.Fatalf("dequeue %d failed", k)
		}
	}
	set1 := s1.Streamlet(0).Served + s1.Streamlet(1).Served
	set2 := s2.Streamlet(0).Served + s2.Streamlet(1).Served
	if set1 != 2000 || set2 != 1000 {
		t.Fatalf("set service = %d/%d, want 2000/1000", set1, set2)
	}
	// Equal split within each set.
	if s1.Streamlet(0).Served != s1.Streamlet(1).Served {
		t.Error("unequal split within set 1")
	}
}

func TestSkipsIdleStreamlets(t *testing.T) {
	// Only streamlet 1 has traffic: round robin must skip the empty ones
	// without stalling ("cycling through active queues").
	srcs := []regblock.HeadSource{
		&traffic.Periodic{Gap: 1, Limit: 1, Backlogged: true},
		&traffic.Periodic{Gap: 1, Backlogged: true},
		&traffic.Periodic{Gap: 1, Limit: 1, Backlogged: true},
	}
	set, _ := NewSet(1, srcs)
	agg, _ := New(set)
	for k := 0; k < 50; k++ {
		if _, ok := agg.NextHead(); !ok {
			t.Fatalf("dequeue %d failed", k)
		}
	}
	if set.Streamlet(1).Served < 48 {
		t.Errorf("active streamlet served %d of 50", set.Streamlet(1).Served)
	}
}

func TestExhaustionAndIdleSets(t *testing.T) {
	s1, _ := NewSet(3, []regblock.HeadSource{&traffic.Periodic{Gap: 1, Limit: 2, Backlogged: true}})
	s2, _ := NewSet(1, []regblock.HeadSource{&traffic.Periodic{Gap: 1, Limit: 1, Backlogged: true}})
	agg, _ := New(s1, s2)
	served := 0
	for {
		if _, ok := agg.NextHead(); !ok {
			break
		}
		served++
	}
	if served != 3 {
		t.Fatalf("served %d, want 3 (all packets, no wedge)", served)
	}
	if _, ok := agg.NextHead(); ok {
		t.Fatal("exhausted aggregator yielded a head")
	}
}

func TestOnTransmitChargesFIFOProvider(t *testing.T) {
	s1, _ := NewSet(1, backlogged(2))
	agg, _ := New(s1)
	agg.NextHead() // streamlet 0
	agg.NextHead() // streamlet 1
	set, sl, err := agg.OnTransmit(100)
	if err != nil || set != 0 || sl != 0 {
		t.Fatalf("first transmit charged %d/%d (%v), want 0/0", set, sl, err)
	}
	_, sl, _ = agg.OnTransmit(200)
	if sl != 1 {
		t.Fatalf("second transmit charged streamlet %d, want 1", sl)
	}
	if s1.Streamlet(0).Bytes != 100 || s1.Streamlet(1).Bytes != 200 {
		t.Fatalf("bytes = %d/%d", s1.Streamlet(0).Bytes, s1.Streamlet(1).Bytes)
	}
	if _, _, err := agg.OnTransmit(1); err == nil {
		t.Fatal("transmit with no outstanding head accepted")
	}
}

func TestAdvanceForwardsClock(t *testing.T) {
	gated := &traffic.Periodic{Gap: 1, Phase: 5}
	set, _ := NewSet(1, []regblock.HeadSource{gated})
	agg, _ := New(set)
	if _, ok := agg.NextHead(); ok {
		t.Fatal("head released before arrival")
	}
	agg.Advance(5)
	if _, ok := agg.NextHead(); !ok {
		t.Fatal("head not released after Advance")
	}
}

func TestAccessors(t *testing.T) {
	s1, _ := NewSet(2, backlogged(3))
	agg, _ := New(s1)
	if agg.Sets() != 1 || agg.Set(0) != s1 || s1.Weight() != 2 || s1.Size() != 3 {
		t.Fatal("accessors broken")
	}
}
