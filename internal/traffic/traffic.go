// Package traffic provides the workload generators the paper's evaluation
// uses: backlogged periodic streams (Table 3), rate-ratio allocations
// (Figures 8 and 10) and the bursty generator whose multi-millisecond
// inter-burst gap produces Figure 9's zig-zag queuing-delay curves.
//
// Generators implement regblock.HeadSource (the pull side the Register Base
// block drains) and core.TimedSource (the scheduler advances them to the
// current virtual time before each decision cycle, releasing newly
// "arrived" packets).
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/regblock"
)

// Periodic generates packets k = 0,1,2,… with arrival time Phase + k·Gap.
// It releases packet k once the virtual clock reaches its arrival time;
// with Backlogged set, every packet is available immediately (arrival
// values are still stamped for FCFS ordering), which is how Table 3's
// "requested every decision cycle" streams are modeled.
type Periodic struct {
	// Phase is packet 0's arrival time.
	Phase uint64
	// Gap is the inter-arrival spacing (≥ 1).
	Gap uint64
	// Limit caps the number of packets generated; 0 means unlimited.
	Limit uint64
	// Backlogged releases all packets immediately regardless of the clock.
	Backlogged bool

	now      uint64
	consumed uint64
}

var _ regblock.HeadSource = (*Periodic)(nil)

// Advance releases packets that have arrived by virtual time now.
func (p *Periodic) Advance(now uint64) { p.now = now }

// Generated returns the number of packets that have arrived by the current
// virtual time (the denominator for miss-rate accounting).
func (p *Periodic) Generated() uint64 {
	if p.Gap == 0 {
		p.Gap = 1
	}
	var n uint64
	if p.Backlogged {
		n = p.Limit
		if n == 0 {
			n = ^uint64(0)
		}
		return n
	}
	if p.now < p.Phase {
		return 0
	}
	n = (p.now-p.Phase)/p.Gap + 1
	if p.Limit != 0 && n > p.Limit {
		n = p.Limit
	}
	return n
}

// Consumed returns the number of packets handed to the slot so far.
func (p *Periodic) Consumed() uint64 { return p.consumed }

// NextHead implements regblock.HeadSource.
func (p *Periodic) NextHead() (regblock.Head, bool) {
	if p.Gap == 0 {
		p.Gap = 1
	}
	k := p.consumed
	if p.Limit != 0 && k >= p.Limit {
		return regblock.Head{}, false
	}
	arrival := p.Phase + k*p.Gap
	if !p.Backlogged && arrival > p.now {
		return regblock.Head{}, false
	}
	p.consumed++
	return regblock.Head{Arrival: arrival}, true
}

// Bursty generates bursts of BurstLen packets with intra-burst spacing Gap,
// separated by InterBurst idle time — the Figure 9 traffic generator
// ("introduces a multi-ms inter-burst delay after the first 4000 frames").
type Bursty struct {
	// BurstLen is the number of packets per burst (≥ 1).
	BurstLen uint64
	// Gap is the intra-burst inter-arrival spacing (≥ 1).
	Gap uint64
	// InterBurst is the idle time between the last packet of a burst and
	// the first packet of the next.
	InterBurst uint64
	// Phase is the first packet's arrival time.
	Phase uint64
	// Limit caps total packets; 0 means unlimited.
	Limit uint64

	now      uint64
	consumed uint64
}

var _ regblock.HeadSource = (*Bursty)(nil)

// Advance implements core.TimedSource.
func (b *Bursty) Advance(now uint64) { b.now = now }

// ArrivalOf returns packet k's arrival time.
func (b *Bursty) ArrivalOf(k uint64) uint64 {
	if b.BurstLen == 0 {
		b.BurstLen = 1
	}
	if b.Gap == 0 {
		b.Gap = 1
	}
	burst := k / b.BurstLen
	within := k % b.BurstLen
	burstSpan := (b.BurstLen-1)*b.Gap + b.InterBurst
	return b.Phase + burst*burstSpan + within*b.Gap
}

// Consumed returns the number of packets handed to the slot so far.
func (b *Bursty) Consumed() uint64 { return b.consumed }

// NextHead implements regblock.HeadSource.
func (b *Bursty) NextHead() (regblock.Head, bool) {
	k := b.consumed
	if b.Limit != 0 && k >= b.Limit {
		return regblock.Head{}, false
	}
	arrival := b.ArrivalOf(k)
	if arrival > b.now {
		return regblock.Head{}, false
	}
	b.consumed++
	return regblock.Head{Arrival: arrival}, true
}

// Replay replays an explicit arrival-time trace — the generator for
// trace-driven evaluation (e.g. captured packet timings). Arrivals must be
// non-decreasing; release is gated on the virtual clock.
type Replay struct {
	arrivals []uint64
	now      uint64
	consumed int
	loop     bool
	offset   uint64 // accumulated span when looping
}

// NewReplay builds a replay source. With loop set, the trace repeats
// end-to-end, each repetition shifted by the trace's span (so arrivals keep
// increasing).
func NewReplay(arrivals []uint64, loop bool) (*Replay, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("traffic: empty trace")
	}
	var prev uint64
	for i, a := range arrivals {
		if a < prev {
			return nil, fmt.Errorf("traffic: trace not monotonic at %d", i)
		}
		prev = a
	}
	return &Replay{arrivals: arrivals, loop: loop}, nil
}

// Advance implements core.TimedSource.
func (r *Replay) Advance(now uint64) { r.now = now }

// Consumed returns the number of packets handed to the slot so far.
func (r *Replay) Consumed() int { return r.consumed }

// NextHead implements regblock.HeadSource.
func (r *Replay) NextHead() (regblock.Head, bool) {
	if !r.loop && r.consumed >= len(r.arrivals) {
		return regblock.Head{}, false
	}
	i := r.consumed % len(r.arrivals)
	arrival := r.arrivals[i] + r.offset
	if arrival > r.now {
		return regblock.Head{}, false
	}
	r.consumed++
	if r.loop && r.consumed%len(r.arrivals) == 0 {
		// One full repetition consumed: shift the next repetition past
		// this one's last arrival.
		r.offset += r.arrivals[len(r.arrivals)-1] - r.arrivals[0] + 1
	}
	return regblock.Head{Arrival: arrival}, true
}

// Tagged wraps a sequence of explicit (arrival, tag) heads for fair-queuing
// slots: the Queue Manager computes each packet's service tag and the slot
// loads it verbatim.
type Tagged struct {
	heads    []regblock.Head
	arrivals []uint64 // unwrapped arrivals for time gating
	now      uint64
	consumed int
}

// NewTagged builds a tagged source. arrivals and tags must have equal
// length; arrivals must be non-decreasing.
func NewTagged(arrivals, tags []uint64) (*Tagged, error) {
	if len(arrivals) != len(tags) {
		return nil, fmt.Errorf("traffic: %d arrivals vs %d tags", len(arrivals), len(tags))
	}
	t := &Tagged{arrivals: arrivals}
	var prev uint64
	for i := range arrivals {
		if arrivals[i] < prev {
			return nil, fmt.Errorf("traffic: arrivals not monotonic at %d", i)
		}
		prev = arrivals[i]
		t.heads = append(t.heads, regblock.Head{
			Arrival: arrivals[i],
			Tag:     tags[i],
		})
	}
	return t, nil
}

// Advance implements core.TimedSource.
func (t *Tagged) Advance(now uint64) { t.now = now }

// NextHead implements regblock.HeadSource.
func (t *Tagged) NextHead() (regblock.Head, bool) {
	if t.consumed >= len(t.heads) {
		return regblock.Head{}, false
	}
	if t.arrivals[t.consumed] > t.now {
		return regblock.Head{}, false
	}
	h := t.heads[t.consumed]
	t.consumed++
	return h, true
}

// Consumed returns the number of packets handed to the slot so far.
func (t *Tagged) Consumed() int { return t.consumed }

// OnOff is a two-state Markov-modulated source — the classic VBR model for
// media and web traffic (§1's "mix of best-effort web-traffic, real-time
// media streams"). In the ON state packets arrive every Gap time units; in
// the OFF state nothing arrives. State dwell times are geometrically
// distributed with the given means, drawn from a seeded deterministic
// generator so runs reproduce exactly.
type OnOff struct {
	// Gap is the ON-state inter-arrival spacing (≥ 1).
	Gap uint64
	// MeanOn and MeanOff are the mean dwell times (time units, ≥ 1).
	MeanOn, MeanOff uint64
	// Seed drives the dwell-time draws.
	Seed int64
	// Limit caps total packets; 0 means unlimited.
	Limit uint64

	rng      *rand.Rand
	now      uint64
	on       bool
	nextFlip uint64 // time of the next state change
	nextPkt  uint64 // next arrival time while ON
	ready    []uint64
	consumed uint64
	emitted  uint64
}

var _ regblock.HeadSource = (*OnOff)(nil)

func (o *OnOff) init() {
	if o.rng != nil {
		return
	}
	if o.Gap == 0 {
		o.Gap = 1
	}
	if o.MeanOn == 0 {
		o.MeanOn = 1
	}
	if o.MeanOff == 0 {
		o.MeanOff = 1
	}
	o.rng = rand.New(rand.NewSource(o.Seed))
	o.on = true
	o.nextFlip = o.dwell(o.MeanOn)
	o.nextPkt = 0
}

// dwell draws a geometric dwell time with the given mean (≥ 1).
func (o *OnOff) dwell(mean uint64) uint64 {
	d := uint64(o.rng.ExpFloat64()*float64(mean)) + 1
	return o.now + d
}

// Advance implements core.TimedSource: simulate state flips and arrivals up
// to virtual time now.
func (o *OnOff) Advance(now uint64) {
	o.init()
	for o.now <= now {
		if o.now == o.nextFlip {
			o.on = !o.on
			if o.on {
				o.nextFlip = o.dwell(o.MeanOn)
				o.nextPkt = o.now
			} else {
				o.nextFlip = o.dwell(o.MeanOff)
			}
		}
		if o.on && o.now == o.nextPkt {
			if o.Limit == 0 || o.emitted < o.Limit {
				o.ready = append(o.ready, o.now)
				o.emitted++
			}
			o.nextPkt = o.now + o.Gap
		}
		o.now++
	}
}

// Consumed returns packets handed to the slot so far.
func (o *OnOff) Consumed() uint64 { return o.consumed }

// Emitted returns packets generated so far.
func (o *OnOff) Emitted() uint64 { return o.emitted }

// NextHead implements regblock.HeadSource.
func (o *OnOff) NextHead() (regblock.Head, bool) {
	o.init()
	if len(o.ready) == 0 {
		return regblock.Head{}, false
	}
	arrival := o.ready[0]
	o.ready = o.ready[1:]
	o.consumed++
	return regblock.Head{Arrival: arrival}, true
}
