package traffic

import (
	"testing"
	"testing/quick"
)

func TestPeriodicGatedRelease(t *testing.T) {
	p := &Periodic{Gap: 3, Phase: 2}
	p.Advance(0)
	if _, ok := p.NextHead(); ok {
		t.Fatal("packet released before its arrival time")
	}
	p.Advance(2)
	h, ok := p.NextHead()
	if !ok || h.Arrival != 2 {
		t.Fatalf("packet 0: ok=%v arrival=%d, want arrival 2", ok, h.Arrival)
	}
	if _, ok := p.NextHead(); ok {
		t.Fatal("packet 1 released early (arrives at 5)")
	}
	p.Advance(5)
	h, ok = p.NextHead()
	if !ok || h.Arrival != 5 {
		t.Fatalf("packet 1: ok=%v arrival=%d, want arrival 5", ok, h.Arrival)
	}
}

func TestPeriodicBackloggedIgnoresClock(t *testing.T) {
	p := &Periodic{Gap: 1, Backlogged: true, Limit: 3}
	for k := 0; k < 3; k++ {
		h, ok := p.NextHead()
		if !ok || h.Arrival != uint64(k) {
			t.Fatalf("packet %d: ok=%v arrival=%d", k, ok, h.Arrival)
		}
	}
	if _, ok := p.NextHead(); ok {
		t.Fatal("limit not enforced")
	}
	if p.Consumed() != 3 {
		t.Fatalf("Consumed = %d, want 3", p.Consumed())
	}
}

func TestPeriodicGenerated(t *testing.T) {
	p := &Periodic{Gap: 2, Phase: 1, Limit: 5}
	p.Advance(0)
	if got := p.Generated(); got != 0 {
		t.Fatalf("Generated at t=0: %d, want 0", got)
	}
	p.Advance(1)
	if got := p.Generated(); got != 1 {
		t.Fatalf("Generated at t=1: %d, want 1", got)
	}
	p.Advance(7) // arrivals 1,3,5,7
	if got := p.Generated(); got != 4 {
		t.Fatalf("Generated at t=7: %d, want 4", got)
	}
	p.Advance(1000)
	if got := p.Generated(); got != 5 {
		t.Fatalf("Generated capped: %d, want 5", got)
	}
}

func TestPeriodicZeroGapDefaults(t *testing.T) {
	p := &Periodic{Backlogged: true}
	h1, _ := p.NextHead()
	h2, _ := p.NextHead()
	if h2.Arrival != h1.Arrival+1 {
		t.Fatalf("zero Gap should default to 1: %d then %d", h1.Arrival, h2.Arrival)
	}
}

func TestPeriodicArrivalStays64Bit(t *testing.T) {
	// Sources speak 64-bit virtual time; the Register Base block, not the
	// generator, truncates onto the 16-bit datapath fields.
	p := &Periodic{Gap: 1, Phase: 0x10000 + 5, Backlogged: true}
	h, _ := p.NextHead()
	if h.Arrival != 0x10005 {
		t.Fatalf("arrival = %#x, want 0x10005 unwrapped", h.Arrival)
	}
}

func TestBurstyArrivals(t *testing.T) {
	// Bursts of 3, gap 1, inter-burst 10:
	// packets 0,1,2 at 0,1,2; packet 3 at 12 (2+10), 4 at 13, 5 at 14;
	// packet 6 at 24.
	b := &Bursty{BurstLen: 3, Gap: 1, InterBurst: 10}
	want := []uint64{0, 1, 2, 12, 13, 14, 24}
	for k, w := range want {
		if got := b.ArrivalOf(uint64(k)); got != w {
			t.Errorf("ArrivalOf(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestBurstyGatedRelease(t *testing.T) {
	b := &Bursty{BurstLen: 2, Gap: 1, InterBurst: 5, Limit: 4}
	b.Advance(1)
	var got []uint64
	for {
		h, ok := b.NextHead()
		if !ok {
			break
		}
		got = append(got, h.Arrival)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("burst 1 arrivals = %v, want [0 1]", got)
	}
	if _, ok := b.NextHead(); ok {
		t.Fatal("burst 2 released during the inter-burst gap")
	}
	b.Advance(6) // packet 2 arrives at 1+5 = 6
	h, ok := b.NextHead()
	if !ok || h.Arrival != 6 {
		t.Fatalf("burst 2 first packet: ok=%v arrival=%d, want 6", ok, h.Arrival)
	}
	b.Advance(100)
	if _, ok := b.NextHead(); !ok {
		t.Fatal("packet 3 should be available")
	}
	if _, ok := b.NextHead(); ok {
		t.Fatal("limit 4 not enforced")
	}
	if b.Consumed() != 4 {
		t.Fatalf("Consumed = %d, want 4", b.Consumed())
	}
}

func TestBurstyArrivalsMonotonic(t *testing.T) {
	f := func(burstLen, gap, inter uint8) bool {
		b := &Bursty{BurstLen: uint64(burstLen%8) + 1, Gap: uint64(gap%4) + 1, InterBurst: uint64(inter)}
		prev := b.ArrivalOf(0)
		for k := uint64(1); k < 50; k++ {
			cur := b.ArrivalOf(k)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaggedValidation(t *testing.T) {
	if _, err := NewTagged([]uint64{1, 2}, []uint64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewTagged([]uint64{2, 1}, []uint64{0, 0}); err == nil {
		t.Error("non-monotonic arrivals accepted")
	}
}

func TestTaggedReleaseAndTags(t *testing.T) {
	src, err := NewTagged([]uint64{0, 0, 4}, []uint64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	src.Advance(0)
	h, ok := src.NextHead()
	if !ok || h.Tag != 10 {
		t.Fatalf("head 0: ok=%v tag=%d", ok, h.Tag)
	}
	h, ok = src.NextHead()
	if !ok || h.Tag != 20 {
		t.Fatalf("head 1: ok=%v tag=%d", ok, h.Tag)
	}
	if _, ok := src.NextHead(); ok {
		t.Fatal("head 2 released before arrival 4")
	}
	src.Advance(4)
	h, ok = src.NextHead()
	if !ok || h.Tag != 30 {
		t.Fatalf("head 2: ok=%v tag=%d", ok, h.Tag)
	}
	if _, ok := src.NextHead(); ok {
		t.Fatal("exhausted source yielded a head")
	}
	if src.Consumed() != 3 {
		t.Fatalf("Consumed = %d, want 3", src.Consumed())
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay(nil, false); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewReplay([]uint64{3, 1}, false); err == nil {
		t.Error("non-monotonic trace accepted")
	}
}

func TestReplayOnce(t *testing.T) {
	r, err := NewReplay([]uint64{0, 2, 2, 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	r.Advance(2)
	var got []uint64
	for {
		h, ok := r.NextHead()
		if !ok {
			break
		}
		got = append(got, h.Arrival)
	}
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("released %v, want [0 2 2]", got)
	}
	r.Advance(5)
	if h, ok := r.NextHead(); !ok || h.Arrival != 5 {
		t.Fatalf("last packet: %v %v", h, ok)
	}
	if _, ok := r.NextHead(); ok {
		t.Fatal("non-looping replay did not end")
	}
	if r.Consumed() != 4 {
		t.Fatalf("consumed = %d", r.Consumed())
	}
}

func TestReplayLoopShiftsArrivals(t *testing.T) {
	r, err := NewReplay([]uint64{0, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	r.Advance(100)
	want := []uint64{0, 3, 4, 7, 8, 11}
	for i, w := range want {
		h, ok := r.NextHead()
		if !ok || h.Arrival != w {
			t.Fatalf("packet %d: arrival %d ok=%v, want %d", i, h.Arrival, ok, w)
		}
	}
}

func TestOnOffDeterministicAndAlternating(t *testing.T) {
	run := func() []uint64 {
		o := &OnOff{Gap: 2, MeanOn: 20, MeanOff: 10, Seed: 5}
		o.Advance(500)
		var got []uint64
		for {
			h, ok := o.NextHead()
			if !ok {
				break
			}
			got = append(got, h.Arrival)
		}
		return got
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no packets generated")
	}
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	var gaps bool
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrival sequences diverge")
		}
		if i > 0 {
			if a[i] <= a[i-1] {
				t.Fatal("arrivals not strictly increasing")
			}
			if a[i]-a[i-1] > 2 {
				gaps = true // an OFF period showed up
			}
		}
	}
	if !gaps {
		t.Error("no OFF periods over 500 time units (mean off 10)")
	}
	// Long-run ON fraction ≈ MeanOn/(MeanOn+MeanOff) = 2/3, so packets ≈
	// 500 * (2/3) / 2 ≈ 167; accept a broad band.
	if len(a) < 80 || len(a) > 250 {
		t.Errorf("generated %d packets over 500 units, expected ≈167", len(a))
	}
}

func TestOnOffLimitAndGating(t *testing.T) {
	o := &OnOff{Gap: 1, MeanOn: 1000, MeanOff: 1, Seed: 1, Limit: 5}
	if _, ok := o.NextHead(); ok {
		t.Fatal("packet before Advance")
	}
	o.Advance(100)
	n := 0
	for {
		if _, ok := o.NextHead(); !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("limit: generated %d, want 5", n)
	}
	if o.Emitted() != 5 || o.Consumed() != 5 {
		t.Fatalf("counters: %d/%d", o.Emitted(), o.Consumed())
	}
}

// onOffTrace advances an OnOff source to horizon in the given step size and
// drains the arrival times.
func onOffTrace(seed int64, horizon, step uint64) []uint64 {
	o := &OnOff{Gap: 2, MeanOn: 15, MeanOff: 10, Seed: seed}
	for now := uint64(0); now <= horizon; now += step {
		o.Advance(now)
	}
	o.Advance(horizon)
	var got []uint64
	for {
		h, ok := o.NextHead()
		if !ok {
			return got
		}
		got = append(got, h.Arrival)
	}
}

// TestOnOffSeedDrivesTrace guards the seeding audit from the other side:
// the dwell-time generator must actually consume OnOff.Seed (a regression
// that hardwired the source would still pass the same-seed reproducibility
// test), and the trace must depend only on the seed — not on the
// granularity of Advance calls, which the endsystem varies per cycle.
func TestOnOffSeedDrivesTrace(t *testing.T) {
	a := onOffTrace(1, 2000, 2000)
	b := onOffTrace(2, 2000, 2000)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no packets generated")
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical traces: Seed is not reaching the generator")
	}

	oneShot := onOffTrace(1, 2000, 2000)
	piecewise := onOffTrace(1, 2000, 7)
	if len(oneShot) != len(piecewise) {
		t.Fatalf("advance granularity changed the trace: %d vs %d packets", len(oneShot), len(piecewise))
	}
	for i := range oneShot {
		if oneShot[i] != piecewise[i] {
			t.Fatalf("advance granularity changed arrival %d: %d vs %d", i, oneShot[i], piecewise[i])
		}
	}
}
