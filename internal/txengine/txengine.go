// Package txengine implements the Transmission Engine of the ShareStreams
// endsystem (Figure 3): the component that takes scheduled Stream IDs from
// the card, enables the NI DMA pulls that move the corresponding frames
// from processor memory to the network, and accounts the per-stream output
// bandwidth and queuing delay the evaluation reports (Figures 8 and 9).
package txengine

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/stats"
)

// Engine is one transmission engine bound to an outgoing link.
type Engine struct {
	link   *link.Link
	meter  *stats.BandwidthMeter
	delays *stats.DelayRecorder

	frames []uint64 // per-stream frame counters
	bytes  []uint64
}

// New builds an engine for streams streams over a link at linkBps, with
// bandwidth averaged over meterWindowNs.
func New(streams int, linkBps, meterWindowNs float64) (*Engine, error) {
	l, err := link.New(linkBps)
	if err != nil {
		return nil, err
	}
	m, err := stats.NewBandwidthMeter(streams, meterWindowNs)
	if err != nil {
		return nil, err
	}
	d, err := stats.NewDelayRecorder(streams)
	if err != nil {
		return nil, err
	}
	return &Engine{
		link:   l,
		meter:  m,
		delays: d,
		frames: make([]uint64, streams),
		bytes:  make([]uint64, streams),
	}, nil
}

// Transmit sends one scheduled frame: stream's frame of size bytes, made
// ready (scheduled) at readyNs, having arrived at arrivalNs. The frame
// serializes on the link; queuing delay is measured arrival → wire
// completion. It returns the wire completion time.
func (e *Engine) Transmit(stream, size int, readyNs, arrivalNs float64) (float64, error) {
	if stream < 0 || stream >= len(e.frames) {
		return 0, fmt.Errorf("txengine: stream %d out of range", stream)
	}
	_, end, err := e.link.Transmit(size, readyNs)
	if err != nil {
		return 0, err
	}
	if err := e.meter.Record(stream, size, end); err != nil {
		return 0, err
	}
	if err := e.delays.Record(stream, e.frames[stream], end-arrivalNs); err != nil {
		return 0, err
	}
	e.frames[stream]++
	e.bytes[stream] += uint64(size)
	return end, nil
}

// Finish closes the measurement windows.
func (e *Engine) Finish() { e.meter.Finish() }

// Bandwidth returns stream i's MB/s series.
func (e *Engine) Bandwidth(i int) []stats.Point { return e.meter.Series(i) }

// MeanMBps returns stream i's mean output bandwidth.
func (e *Engine) MeanMBps(i int) float64 { return e.meter.MeanMBps(i) }

// Delays returns stream i's (packet index, delay ms) series.
func (e *Engine) Delays(i int) []stats.Point { return e.delays.Series(i) }

// DelayStats returns stream i's mean and maximum queuing delay (ms).
func (e *Engine) DelayStats(i int) (mean, max float64) {
	return e.delays.Mean(i), e.delays.Max(i)
}

// Jitter returns stream i's delay jitter (ms): the mean absolute difference
// between consecutive packets' delays.
func (e *Engine) Jitter(i int) float64 { return e.delays.Jitter(i) }

// Frames returns stream i's transmitted frame count.
func (e *Engine) Frames(i int) uint64 { return e.frames[i] }

// Bytes returns stream i's transmitted byte count.
func (e *Engine) Bytes(i int) uint64 { return e.bytes[i] }

// Link exposes the output link (utilization, totals).
func (e *Engine) Link() *link.Link { return e.link }
