package txengine

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1e9, 1e6); err == nil {
		t.Error("accepted zero streams")
	}
	if _, err := New(2, 0, 1e6); err == nil {
		t.Error("accepted zero link rate")
	}
	if _, err := New(2, 1e9, 0); err == nil {
		t.Error("accepted zero meter window")
	}
}

func TestTransmitAccounting(t *testing.T) {
	e, err := New(2, 8e6, 1e9) // 1 MB/s link, 1 s windows
	if err != nil {
		t.Fatal(err)
	}
	// 1000-byte frame takes 1 ms on the wire.
	end, err := e.Transmit(0, 1000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-1e6) > 1e-6 {
		t.Fatalf("completion = %v ns, want 1e6", end)
	}
	if e.Frames(0) != 1 || e.Bytes(0) != 1000 || e.Frames(1) != 0 {
		t.Fatalf("counters: %d/%d frames, %d bytes", e.Frames(0), e.Frames(1), e.Bytes(0))
	}
	if _, err := e.Transmit(9, 1, 0, 0); err == nil {
		t.Error("accepted out-of-range stream")
	}
}

func TestBandwidthAndDelaySeries(t *testing.T) {
	e, _ := New(2, 80e6, 1e8) // 10 MB/s link, 100 ms windows
	// Stream 0 sends 10 frames of 10 kB back to back: 1 ms each.
	for k := 0; k < 10; k++ {
		arrival := float64(k) * 1e6
		if _, err := e.Transmit(0, 10000, arrival, arrival); err != nil {
			t.Fatal(err)
		}
	}
	e.Finish()
	if mean := e.MeanMBps(0); mean <= 0 {
		t.Fatalf("mean bandwidth = %v", mean)
	}
	if len(e.Bandwidth(0)) == 0 {
		t.Fatal("no bandwidth points")
	}
	if len(e.Delays(0)) != 10 {
		t.Fatalf("delay points = %d", len(e.Delays(0)))
	}
	mean, max := e.DelayStats(0)
	// Each frame completes 1 ms after it arrives (no queuing).
	if math.Abs(mean-1.0) > 1e-9 || math.Abs(max-1.0) > 1e-9 {
		t.Fatalf("delay mean/max = %v/%v ms, want 1/1", mean, max)
	}
}

func TestQueuingDelayGrowsUnderContention(t *testing.T) {
	e, _ := New(1, 8e6, 1e9) // 1 MB/s: 1000-byte frame = 1 ms
	// Ten frames all arrive at t=0: the k-th completes at (k+1) ms.
	for k := 0; k < 10; k++ {
		if _, err := e.Transmit(0, 1000, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	e.Finish()
	_, max := e.DelayStats(0)
	if math.Abs(max-10.0) > 1e-9 {
		t.Fatalf("max delay = %v ms, want 10", max)
	}
	if e.Link().Frames() != 10 {
		t.Fatalf("link frames = %d", e.Link().Frames())
	}
}
