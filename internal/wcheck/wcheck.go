// Package wcheck verifies window-constraint satisfaction: given the
// per-packet service/loss outcome sequence of a stream, it checks the DWCS
// guarantee that no more than x packets are lost in any window of y
// consecutive packets (the (m,k)-firm / W = x/y semantics of §2).
//
// The checker is the empirical complement to package admission's analytic
// feasibility test: admission proves a stream set schedulable; wcheck
// audits an actual schedule (from the cycle-accurate model or any trace)
// against each stream's contracted tolerance. Tests use it to pin that the
// scheduler honors window constraints whenever the admitted set is
// feasible.
package wcheck

import "fmt"

// Outcome is one packet's fate.
type Outcome uint8

const (
	// Met: the packet was transmitted by its deadline.
	Met Outcome = iota
	// Lost: the packet was dropped or transmitted late.
	Lost
)

// Violation records one window that exceeded its loss tolerance.
type Violation struct {
	// Start is the index of the window's first packet.
	Start int
	// Losses in the window (> Num).
	Losses int
}

// Check audits a stream's outcome sequence against tolerance x-of-y: at
// most x losses in every window of y consecutive packets. It returns all
// violating windows (by their starting packet index). A zero y never
// violates (no window).
func Check(outcomes []Outcome, x, y int) ([]Violation, error) {
	if x < 0 || y < 0 || (y > 0 && x > y) {
		return nil, fmt.Errorf("wcheck: bad tolerance %d/%d", x, y)
	}
	if y == 0 || len(outcomes) < y {
		return nil, nil
	}
	var violations []Violation
	losses := 0
	for i, o := range outcomes {
		if o == Lost {
			losses++
		}
		if i >= y && outcomes[i-y] == Lost {
			losses--
		}
		if i >= y-1 && losses > x {
			violations = append(violations, Violation{Start: i - y + 1, Losses: losses})
		}
	}
	return violations, nil
}

// Stats summarizes a stream's outcome sequence.
type Stats struct {
	Packets    int
	Losses     int
	LossRate   float64
	Violations int // violating windows under the given tolerance
	WorstLoss  int // maximum losses observed in any window
}

// Audit computes Stats for outcomes under tolerance x-of-y.
func Audit(outcomes []Outcome, x, y int) (Stats, error) {
	v, err := Check(outcomes, x, y)
	if err != nil {
		return Stats{}, err
	}
	s := Stats{Packets: len(outcomes), Violations: len(v)}
	for _, o := range outcomes {
		if o == Lost {
			s.Losses++
		}
	}
	if s.Packets > 0 {
		s.LossRate = float64(s.Losses) / float64(s.Packets)
	}
	// Worst window.
	if y > 0 && len(outcomes) >= y {
		losses := 0
		for i, o := range outcomes {
			if o == Lost {
				losses++
			}
			if i >= y && outcomes[i-y] == Lost {
				losses--
			}
			if i >= y-1 && losses > s.WorstLoss {
				s.WorstLoss = losses
			}
		}
	}
	return s, nil
}

// Recorder accumulates a stream's outcomes as the schedule unfolds.
type Recorder struct {
	outcomes []Outcome
}

// Record appends one packet's fate.
func (r *Recorder) Record(lost bool) {
	o := Met
	if lost {
		o = Lost
	}
	r.outcomes = append(r.outcomes, o)
}

// Outcomes returns the accumulated sequence.
func (r *Recorder) Outcomes() []Outcome { return r.outcomes }

// Len returns the packet count.
func (r *Recorder) Len() int { return len(r.outcomes) }
