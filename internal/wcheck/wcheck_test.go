package wcheck

import (
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/traffic"
)

func seq(s string) []Outcome {
	out := make([]Outcome, len(s))
	for i, c := range s {
		if c == 'L' {
			out[i] = Lost
		}
	}
	return out
}

func TestCheckBasic(t *testing.T) {
	// Tolerance 1/3: one loss per window of 3.
	v, err := Check(seq("MLMMLM"), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
	// Two losses inside one 3-window.
	v, _ = Check(seq("MLLM"), 1, 3)
	if len(v) != 2 { // windows starting at 0 and 1 both see 2 losses
		t.Fatalf("violations = %v, want 2 windows", v)
	}
	if v[0].Start != 0 || v[0].Losses != 2 {
		t.Fatalf("first violation = %+v", v[0])
	}
}

func TestCheckEdges(t *testing.T) {
	if _, err := Check(seq("ML"), -1, 3); err == nil {
		t.Error("negative x accepted")
	}
	if _, err := Check(seq("ML"), 4, 3); err == nil {
		t.Error("x > y accepted")
	}
	// y = 0: no windows, never violates.
	if v, err := Check(seq("LLLL"), 0, 0); err != nil || v != nil {
		t.Errorf("y=0: %v %v", v, err)
	}
	// Shorter than a window: no violation possible.
	if v, _ := Check(seq("LL"), 0, 3); v != nil {
		t.Errorf("short sequence violated: %v", v)
	}
	// Zero tolerance: any loss in any window violates.
	if v, _ := Check(seq("MMLM"), 0, 2); len(v) != 2 {
		t.Errorf("zero tolerance: %v", v)
	}
}

// TestCheckMatchesBruteForce property-tests the sliding-window counter
// against a quadratic reference.
func TestCheckMatchesBruteForce(t *testing.T) {
	f := func(bits []bool, xr, yr uint8) bool {
		if len(bits) > 200 {
			bits = bits[:200]
		}
		outcomes := make([]Outcome, len(bits))
		losses := 0
		for i, b := range bits {
			if b {
				outcomes[i] = Lost
				losses++
			}
		}
		y := int(yr%8) + 1
		x := int(xr) % (y + 1)
		got, err := Check(outcomes, x, y)
		if err != nil {
			return false
		}
		var want []Violation
		for s := 0; s+y <= len(outcomes); s++ {
			n := 0
			for k := s; k < s+y; k++ {
				if outcomes[k] == Lost {
					n++
				}
			}
			if n > x {
				want = append(want, Violation{Start: s, Losses: n})
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAuditStats(t *testing.T) {
	s, err := Audit(seq("MLLMML"), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Packets != 6 || s.Losses != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LossRate != 0.5 {
		t.Fatalf("loss rate = %v", s.LossRate)
	}
	if s.WorstLoss != 2 {
		t.Fatalf("worst window = %d", s.WorstLoss)
	}
	if s.Violations == 0 {
		t.Fatal("violations not counted")
	}
	if _, err := Audit(nil, 5, 3); err == nil {
		t.Error("bad tolerance accepted")
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Record(false)
	r.Record(true)
	r.Record(false)
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := r.Outcomes(); got[0] != Met || got[1] != Lost || got[2] != Met {
		t.Fatalf("outcomes = %v", got)
	}
}

// TestFeasibleScheduleHonorsWindows is the end-to-end audit: a feasible
// window-constrained stream set (admission-checked demand ≤ 1) scheduled by
// the cycle-accurate model must not violate any stream's tolerance.
func TestFeasibleScheduleHonorsWindows(t *testing.T) {
	// Three WC streams, each demanding (1 - x/y)/T:
	//   A: T=2, W=1/2 -> 0.25   B: T=4, W=1/4 -> 0.1875   C: T=2, W=0/4 -> 0.5
	// Total 0.9375 ≤ 1: feasible.
	specs := []attr.Spec{
		{Class: attr.WindowConstrained, Period: 2, Constraint: attr.Constraint{Num: 1, Den: 2}},
		{Class: attr.WindowConstrained, Period: 4, Constraint: attr.Constraint{Num: 1, Den: 4}},
		{Class: attr.WindowConstrained, Period: 2, Constraint: attr.Constraint{Num: 0, Den: 4}},
	}
	sched, err := core.New(core.Config{Slots: 4, Routing: core.WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	recorders := make([]*Recorder, len(specs))
	for i, spec := range specs {
		recorders[i] = &Recorder{}
		src := &traffic.Periodic{Gap: uint64(spec.Period), Phase: uint64(i)}
		if err := sched.Admit(i, spec, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	// Track per-stream outcomes from the cycle results: a transmission is
	// Met/Lost by its Late flag; expiry drops are Lost (observed via the
	// Drops counter delta).
	prevDrops := make([]uint64, len(specs))
	for c := 0; c < 20000; c++ {
		cr := sched.RunCycle()
		for _, tx := range cr.Transmissions {
			if int(tx.Slot) < len(specs) {
				recorders[tx.Slot].Record(tx.Late)
			}
		}
		for i := range specs {
			d := sched.SlotCounters(i).Drops
			for ; prevDrops[i] < d; prevDrops[i]++ {
				recorders[i].Record(true)
			}
		}
	}
	for i, spec := range specs {
		st, err := Audit(recorders[i].Outcomes(),
			int(spec.Constraint.Num), int(spec.Constraint.Den))
		if err != nil {
			t.Fatal(err)
		}
		if st.Packets < 1000 {
			t.Fatalf("stream %d audited only %d packets", i, st.Packets)
		}
		if st.Violations != 0 {
			t.Errorf("stream %d (W=%v): %d window violations, worst %d losses",
				i, spec.Constraint, st.Violations, st.WorstLoss)
		}
	}
}
