#!/bin/sh
# Smoke test for cmd/ssserved: start the daemon on a random port, drive the
# admin API end to end (admit, retune, program switch, pool resize, drain,
# restart, evict — plus one deliberate error), then shut it down gracefully
# and require a clean exit with a balanced final conservation ledger.
#
# Artifacts land in $SMOKE_DIR (default: a fresh mktemp dir): daemon stdout
# (the final ledger JSON), stderr, and the transition journal. CI uploads
# the directory when this script fails.
set -eu

SMOKE_DIR=${SMOKE_DIR:-$(mktemp -d)}
BIN="$SMOKE_DIR/ssserved"
ADDR_FILE="$SMOKE_DIR/addr"
JOURNAL="$SMOKE_DIR/journal.txt"
OUT="$SMOKE_DIR/stdout.json"
ERR="$SMOKE_DIR/stderr.log"

echo "smoke: artifacts in $SMOKE_DIR"
go build -o "$BIN" ./cmd/ssserved

"$BIN" -addr-file "$ADDR_FILE" -journal "$JOURNAL" -epoch-ms 2 >"$OUT" 2>"$ERR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$ADDR_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke: FAIL: daemon never published its address" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$ADDR_FILE")
echo "smoke: daemon on $ADDR"

# post ROUTE QUERY EXPECTED_HTTP_CODE
post() {
    code=$(curl -s -o "$SMOKE_DIR/last-response.json" -w '%{http_code}' \
        -X POST "http://$ADDR/admin/$1?$2")
    if [ "$code" != "$3" ]; then
        echo "smoke: FAIL: POST /admin/$1?$2 -> HTTP $code, want $3" >&2
        cat "$SMOKE_DIR/last-response.json" >&2
        exit 1
    fi
}

post admit 'id=1&class=edf&period=3' 200
post admit 'id=2&class=wc&period=4&num=1&den=4' 200
post admit 'id=3&class=fair&weight=4' 200
post admit 'id=1&class=edf&period=3' 409       # already admitted
post retune 'id=1&class=edf&period=9' 200
post retune 'id=1&class=fair&weight=2' 409     # class change is an evict/admit
post program 'id=3&program=stfq' 200
post pool 'shard=0&burst=80' 200
post drain 'shard=2' 200
post restart 'shard=2' 200
post evict 'id=404' 409                        # unknown stream
post evict 'id=2' 200
post admit 'id=99&class=bogus' 400             # rejected before the fence

# Let a few epochs of traffic flow, then check the live ledger balances.
sleep 0.3
curl -s "http://$ADDR/admin/ledger" >"$SMOKE_DIR/ledger.json"
grep -q '"balanced": true' "$SMOKE_DIR/ledger.json" || {
    echo "smoke: FAIL: live ledger unbalanced" >&2
    cat "$SMOKE_DIR/ledger.json" >&2
    exit 1
}

post shutdown '' 200
if ! wait "$PID"; then
    echo "smoke: FAIL: daemon exited nonzero" >&2
    cat "$ERR" >&2
    exit 1
fi
trap - EXIT

# The exit ledger must close the books: balanced, nothing in flight, no
# violations, and the journal must have recorded the session.
grep -q '"balanced": true' "$OUT" || { echo "smoke: FAIL: final ledger unbalanced" >&2; cat "$OUT" >&2; exit 1; }
grep -q '"InFlight": 0' "$OUT" || { echo "smoke: FAIL: frames in flight at exit" >&2; cat "$OUT" >&2; exit 1; }
grep -q '"violations": 0' "$OUT" || { echo "smoke: FAIL: conservation violations" >&2; cat "$OUT" >&2; exit 1; }
head -1 "$JOURNAL" | grep -q '^ssctl v1 ' || { echo "smoke: FAIL: journal header missing" >&2; exit 1; }

echo "smoke: PASS ($(wc -l <"$JOURNAL") journal lines)"
