#!/bin/sh
# Smoke test for cmd/ssserved, in two phases. Phase 1 starts the daemon on a
# random port, drives the admin API end to end (admit, retune, program
# switch, pool resize, drain, restart, evict — plus deliberate errors),
# checks the live ledger, then kills the daemon with SIGKILL and tears the
# journal's final write, as a real crash would. Phase 2 restarts it with
# -recover on the torn journal, requires the admitted state to have
# survived replay (a duplicate admit must 409), then shuts down gracefully
# and requires a clean exit with a balanced final conservation ledger.
#
# Artifacts land in $SMOKE_DIR (default: a fresh mktemp dir): daemon stdout
# (the final ledger JSON), stderr for both phases, and the transition
# journal. CI uploads the directory when this script fails.
set -eu

SMOKE_DIR=${SMOKE_DIR:-$(mktemp -d)}
BIN="$SMOKE_DIR/ssserved"
ADDR_FILE="$SMOKE_DIR/addr"
JOURNAL="$SMOKE_DIR/journal.txt"
OUT="$SMOKE_DIR/stdout.json"
ERR="$SMOKE_DIR/stderr.log"
OUT2="$SMOKE_DIR/stdout-recovered.json"
ERR2="$SMOKE_DIR/stderr-recovered.log"

echo "smoke: artifacts in $SMOKE_DIR"
go build -o "$BIN" ./cmd/ssserved

# wait_addr: block until the daemon publishes its bound address, bounded.
wait_addr() {
    : >"$ADDR_FILE"
    i=0
    while [ ! -s "$ADDR_FILE" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke: FAIL: daemon never published its address" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR=$(cat "$ADDR_FILE")
}

# post ROUTE QUERY EXPECTED_HTTP_CODE — every curl carries a hard timeout,
# and transient failures (connection refused, 503 while the daemon replays
# its journal) retry with linear backoff, bounded at 5 attempts.
post() {
    attempt=0
    while :; do
        code=$(curl -s --max-time 5 -o "$SMOKE_DIR/last-response.json" -w '%{http_code}' \
            -X POST "http://$ADDR/admin/$1?$2") || code=000
        if [ "$code" != "000" ] && { [ "$code" != "503" ] || [ "$3" = "503" ]; }; then
            break
        fi
        attempt=$((attempt + 1))
        if [ "$attempt" -ge 5 ]; then
            echo "smoke: FAIL: POST /admin/$1?$2 -> HTTP $code after $attempt attempts" >&2
            exit 1
        fi
        sleep "$attempt"
    done
    if [ "$code" != "$3" ]; then
        echo "smoke: FAIL: POST /admin/$1?$2 -> HTTP $code, want $3" >&2
        cat "$SMOKE_DIR/last-response.json" >&2
        exit 1
    fi
}

# get ROUTE OUTFILE — same timeout and bounded retry as post.
get() {
    attempt=0
    until curl -s --max-time 5 "http://$ADDR/admin/$1" >"$2"; do
        attempt=$((attempt + 1))
        if [ "$attempt" -ge 5 ]; then
            echo "smoke: FAIL: GET /admin/$1 unreachable after $attempt attempts" >&2
            exit 1
        fi
        sleep "$attempt"
    done
}

# ── Phase 1: drive the API, then crash hard ────────────────────────────────

"$BIN" -addr-file "$ADDR_FILE" -journal "$JOURNAL" -epoch-ms 2 >"$OUT" 2>"$ERR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT
wait_addr
echo "smoke: daemon on $ADDR"

post admit 'id=1&class=edf&period=3' 200
post admit 'id=2&class=wc&period=4&num=1&den=4' 200
post admit 'id=3&class=fair&weight=4' 200
post admit 'id=1&class=edf&period=3' 409       # already admitted
post retune 'id=1&class=edf&period=9' 200
post retune 'id=1&class=fair&weight=2' 409     # class change is an evict/admit
post program 'id=3&program=stfq' 200
post pool 'shard=0&burst=80' 200
post drain 'shard=2' 200
post restart 'shard=2' 200
post evict 'id=404' 409                        # unknown stream
post evict 'id=2' 200
post admit 'id=99&class=bogus' 400             # rejected before the fence

# Let a few epochs of traffic flow, then check the live ledger balances.
sleep 0.3
get ledger "$SMOKE_DIR/ledger.json"
grep -q '"balanced": true' "$SMOKE_DIR/ledger.json" || {
    echo "smoke: FAIL: live ledger unbalanced" >&2
    cat "$SMOKE_DIR/ledger.json" >&2
    exit 1
}

# Crash: SIGKILL — no settle, no close — then tear the journal's final
# write, the on-disk state a power cut mid-line leaves behind.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
trap - EXIT
size=$(wc -c <"$JOURNAL")
head -c "$((size - 7))" "$JOURNAL" >"$JOURNAL.torn" && mv "$JOURNAL.torn" "$JOURNAL"
echo "smoke: killed -9, journal torn to $((size - 7)) bytes"

# ── Phase 2: recover and finish cleanly ────────────────────────────────────

"$BIN" -addr-file "$ADDR_FILE" -journal "$JOURNAL" -recover -epoch-ms 2 >"$OUT2" 2>"$ERR2" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT
wait_addr
echo "smoke: recovered daemon on $ADDR"

get recovery "$SMOKE_DIR/recovery.json"
grep -q '"state": "serving"' "$SMOKE_DIR/recovery.json" || {
    echo "smoke: FAIL: recovery did not reach serving" >&2
    cat "$SMOKE_DIR/recovery.json" >&2
    exit 1
}

# Replay must have rebuilt the pre-crash control plane: stream 1 is still
# admitted (duplicate admit refused at the fence), stream 2 stays evicted,
# and new mutations apply on top.
post admit 'id=1&class=edf&period=9' 409
post evict 'id=2' 409
post admit 'id=4&class=static&priority=2' 200
post evict 'id=3' 200

sleep 0.3
post shutdown '' 200
if ! wait "$PID"; then
    echo "smoke: FAIL: recovered daemon exited nonzero" >&2
    cat "$ERR2" >&2
    exit 1
fi
trap - EXIT

# The exit ledger must close the books: balanced, nothing in flight, no
# violations, and the journal must have recorded both sessions.
grep -q '"balanced": true' "$OUT2" || { echo "smoke: FAIL: final ledger unbalanced" >&2; cat "$OUT2" >&2; exit 1; }
grep -q '"InFlight": 0' "$OUT2" || { echo "smoke: FAIL: frames in flight at exit" >&2; cat "$OUT2" >&2; exit 1; }
grep -q '"violations": 0' "$OUT2" || { echo "smoke: FAIL: conservation violations" >&2; cat "$OUT2" >&2; exit 1; }
head -1 "$JOURNAL" | grep -q '^ssctl v2 ' || { echo "smoke: FAIL: journal header missing" >&2; exit 1; }
grep -q 'recovered' "$ERR2" || { echo "smoke: FAIL: recovery summary missing from stderr" >&2; cat "$ERR2" >&2; exit 1; }

echo "smoke: PASS ($(wc -l <"$JOURNAL") journal lines across crash and recovery)"
