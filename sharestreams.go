// Package sharestreams is a Go reproduction of the ShareStreams QoS
// architecture — "Leveraging Block Decisions and Aggregation in the
// ShareStreams QoS Architecture" (Krishnamurthy, Yalamanchili, Schwan,
// West; IPPS 2003).
//
// ShareStreams is a unified canonical architecture for packet scheduling
// disciplines: per-stream state lives in Register Base blocks
// (stream-slots), streams are ordered pairwise by multi-attribute Decision
// blocks arranged in a recirculating shuffle-exchange network (N/2 blocks,
// log₂N cycles per decision), and a winner ID circulates back each decision
// cycle so window-constrained disciplines can adjust priorities every
// cycle. Priority-class, fair-queuing, EDF and DWCS (window-constrained)
// streams all map onto the one datapath.
//
// The original artifact is a Xilinx Virtex-I FPGA on a PCI card driven by
// host software; this package reproduces it as a cycle-accurate hardware
// model plus the endsystem software stack, with calibrated area/clock and
// transfer-cost models standing in for the silicon (see DESIGN.md for the
// substitution table and EXPERIMENTS.md for paper-vs-measured results).
//
// # Quick start
//
//	sched, _ := sharestreams.NewScheduler(sharestreams.Config{
//		Slots:   4,
//		Routing: sharestreams.BlockRouting,
//	})
//	for i := 0; i < 4; i++ {
//		src := &sharestreams.PeriodicTraffic{Gap: 1, Phase: uint64(i), Backlogged: true}
//		_ = sched.Admit(i, sharestreams.EDFStream(1), src)
//	}
//	_ = sched.Start()
//	cr := sched.RunCycle() // one block transaction
//
// The sub-APIs re-exported here:
//
//   - Config/Scheduler — the canonical hardware scheduler (internal/core).
//   - Spec constructors — EDFStream, WindowConstrainedStream,
//     StaticPriorityStream, FairShareStream (internal/attr).
//   - Traffic generators — PeriodicTraffic, BurstyTraffic, TaggedTraffic
//     (internal/traffic).
//   - Aggregation — StreamletSet/Aggregate (internal/streamlet).
//   - The endsystem realization and §5.2 operating points
//     (internal/endsystem).
//   - Experiments — Table3, Fig7…Fig10, Sec41, Sec52, Ablation
//     (internal/experiments), each regenerating one table or figure.
package sharestreams

import (
	"repro/internal/admission"
	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/endsystem"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/fpga"
	"repro/internal/linecard"
	"repro/internal/pci"
	"repro/internal/qm"
	"repro/internal/regblock"
	"repro/internal/shard"
	"repro/internal/streamlet"
	"repro/internal/traffic"
)

// Core scheduler types.
type (
	// Config parameterizes a scheduler instance (slot count, BA/WR
	// routing, circulate mode, extensions).
	Config = core.Config
	// Scheduler is a ShareStreams canonical scheduler.
	Scheduler = core.Scheduler
	// CycleResult reports one decision cycle.
	CycleResult = core.CycleResult
	// Transmission is one frame leaving the scheduler.
	Transmission = core.Transmission
	// Routing selects block (BA) or winner-only (WR) routing.
	Routing = core.Routing
	// Circulate selects max-first or min-first block circulation.
	Circulate = core.Circulate
	// StreamSpec describes an admitted stream's service constraints.
	StreamSpec = attr.Spec
	// Constraint is a DWCS window-constraint (loss-tolerance) x/y.
	Constraint = attr.Constraint
	// Head is one packet head (arrival time plus fair-queuing tag) as
	// delivered by a HeadSource.
	Head = regblock.Head
	// HeadSource feeds a stream-slot with successive packet heads.
	HeadSource = regblock.HeadSource
	// SlotCounters are a slot's hardware performance counters.
	SlotCounters = regblock.Counters
)

// Routing and circulation modes.
const (
	// BlockRouting (BA) routes winners and losers: the sorted block.
	BlockRouting = core.BlockRouting
	// WinnerOnly (WR) routes winners only: max-finding.
	WinnerOnly = core.WinnerOnly
	// MaxFirst circulates/transmits the block head first.
	MaxFirst = core.MaxFirst
	// MinFirst circulates the block tail and transmits tail-first.
	MinFirst = core.MinFirst
)

// NewScheduler builds a scheduler from cfg. Admit streams, then Start, then
// RunCycle/RunFor.
func NewScheduler(cfg Config) (*Scheduler, error) { return core.New(cfg) }

// EDFStream returns the spec of an earliest-deadline-first stream with the
// given request period (time units between successive packet deadlines).
func EDFStream(period uint16) StreamSpec {
	return attr.Spec{Class: attr.EDF, Period: period}
}

// WindowConstrainedStream returns the spec of a DWCS stream: deadline every
// period, tolerating lossNum late/lost packets per window of lossDen.
func WindowConstrainedStream(period uint16, lossNum, lossDen uint8) StreamSpec {
	return attr.Spec{
		Class:      attr.WindowConstrained,
		Period:     period,
		Constraint: attr.Constraint{Num: lossNum, Den: lossDen},
	}
}

// StaticPriorityStream returns the spec of a time-invariant priority stream
// (lower value = served first).
func StaticPriorityStream(priority uint16) StreamSpec {
	return attr.Spec{Class: attr.StaticPriority, Priority: priority}
}

// FairShareStream returns the spec of a fair-queuing stream with the given
// weight; its per-packet service tags come from the head source (computed
// by the Queue Manager).
func FairShareStream(weight uint16) StreamSpec {
	return attr.Spec{Class: attr.FairTag, Weight: weight}
}

// GuardedPriorityStream returns the spec of a static-priority stream with a
// starvation guard: a head that has waited guard time units is boosted to
// priority 0 until served. priority must stay below 2^15 when guarded.
func GuardedPriorityStream(priority, guard uint16) StreamSpec {
	return attr.Spec{Class: attr.StaticPriority, Priority: priority, Guard: guard}
}

// Rank programs (DESIGN.md §8): a discipline, seen from the shuffle
// network, is a pure function from stream state to a packed uint64 rank key.
// RankProgram names one registered program; Program.Rank is the function.
type RankProgram = decision.Program

// The registered rank programs.
const (
	// ProgramDWCS is the full window-constrained (DWCS) Table-2 cascade.
	ProgramDWCS = decision.ProgramDWCS
	// ProgramTagOnly orders by precomputed service tags (WFQ-style).
	ProgramTagOnly = decision.ProgramTagOnly
	// ProgramSTFQ is start-time fair queuing over the qm tag state.
	ProgramSTFQ = decision.ProgramSTFQ
	// ProgramEDF is earliest-deadline-first.
	ProgramEDF = decision.ProgramEDF
	// ProgramStrictPriority is strict priority with a starvation guard.
	ProgramStrictPriority = decision.ProgramStrictPriority
)

// RankPrograms returns every registered rank program.
func RankPrograms() []RankProgram { return decision.Programs() }

// ProgramConfig returns the scheduler Config that runs rank program p over
// the given slot count and routing.
func ProgramConfig(slots int, p RankProgram, routing Routing) Config {
	return core.ProgramConfig(slots, p, routing)
}

// Traffic generators.
type (
	// PeriodicTraffic generates packets every Gap time units starting at
	// Phase; Backlogged releases everything immediately.
	PeriodicTraffic = traffic.Periodic
	// BurstyTraffic generates bursts separated by idle gaps (Figure 9).
	BurstyTraffic = traffic.Bursty
	// TaggedTraffic supplies explicit (arrival, service-tag) heads for
	// fair-share streams.
	TaggedTraffic = traffic.Tagged
)

// NewTaggedTraffic builds a tagged source from parallel arrival/tag slices.
func NewTaggedTraffic(arrivals, tags []uint64) (*TaggedTraffic, error) {
	return traffic.NewTagged(arrivals, tags)
}

// Aggregation.
type (
	// StreamletSet is a weighted group of streamlets within a slot.
	StreamletSet = streamlet.Set
	// StreamletAggregator merges streamlet sets into one stream-slot.
	StreamletAggregator = streamlet.Aggregator
)

// NewStreamletSet groups sources into a weighted set.
func NewStreamletSet(weight int, sources []HeadSource) (*StreamletSet, error) {
	return streamlet.NewSet(weight, sources)
}

// Aggregate binds streamlet sets to one stream-slot head source.
func Aggregate(sets ...*StreamletSet) (*StreamletAggregator, error) {
	return streamlet.New(sets...)
}

// Endsystem realization.
type (
	// TransferMode selects how arrival-times/stream-IDs cross the PCI bus.
	TransferMode = pci.Mode
	// OperatingPoint is a §5.2 endsystem throughput point.
	OperatingPoint = endsystem.OperatingPoint
	// AllocationConfig parameterizes a bandwidth-allocation run.
	AllocationConfig = endsystem.AllocationConfig
	// AllocationResult reports a bandwidth-allocation run.
	AllocationResult = endsystem.AllocationResult
)

// Transfer modes.
const (
	// TransferNone excludes PCI costs (the 469,483 pps §5.2 point).
	TransferNone = pci.ModeNone
	// TransferPIO uses push/read programmed I/O (the 299,065 pps point).
	TransferPIO = pci.ModePIO
	// TransferDMA uses pull DMA bursts.
	TransferDMA = pci.ModeDMA
)

// EndsystemThroughput returns the modeled §5.2 operating point for a
// transfer mode.
func EndsystemThroughput(mode TransferMode) (OperatingPoint, error) {
	return endsystem.Throughput(mode)
}

// RunAllocation executes a Figure 8/9/10-style bandwidth-allocation run.
func RunAllocation(cfg AllocationConfig) (*AllocationResult, error) {
	return endsystem.RunAllocation(cfg)
}

// Sharded endsystem: K independent scheduler pipelines behind a flow-hash
// dispatcher, with per-shard counters and bandwidth series merged into one
// view (internal/shard).
type (
	// ShardedConfig parameterizes a sharded router.
	ShardedConfig = shard.Config
	// ShardedRouter dispatches streams to K scheduler pipelines by flow
	// hash and aggregates their results.
	ShardedRouter = shard.Router
	// ShardedResult is the merged view of a sharded run.
	ShardedResult = shard.Result
	// ShardResult is one shard's slice of a sharded run.
	ShardResult = shard.ShardResult
	// StreamID identifies a stream across the sharded endsystem.
	StreamID = shard.StreamID
)

// NewShardedRouter builds a sharded endsystem router; Admit (or
// AdmitBalanced) streams, then Run.
func NewShardedRouter(cfg ShardedConfig) (*ShardedRouter, error) {
	return shard.New(cfg)
}

// RunSharded drives K evenly loaded scheduler pipelines under the §5.2
// calibration and returns the aggregated result: one shard reproduces the
// single-pipeline operating points, K shards report ≈K× the modeled
// throughput (and wall-clock throughput that scales with host cores).
func RunSharded(shards, slotsPerShard, framesPerStream int, mode TransferMode) (*ShardedResult, error) {
	return endsystem.RunSharded(shards, slotsPerShard, framesPerStream, mode)
}

type (
	// ShardedOptions selects the optional machinery of a sharded run: PCI
	// metering, an observability registry, the run-to-completion shard loop,
	// and the delay-driven shared buffer pool (DESIGN.md §9).
	ShardedOptions = endsystem.ShardedOptions
	// BufferPoolConfig sizes the Queue Manager's shared buffering: a
	// guaranteed per-stream reservation plus a burst pool lent frame by
	// frame while a stream's measured head delay (in modeled service
	// rounds) stays at or under DelayTarget. A zero value keeps the
	// historical fixed per-stream rings.
	BufferPoolConfig = qm.SharedConfig
)

// RunShardedOpts is RunSharded with the optional machinery selectable —
// the general driver behind RunSharded, RunShardedInstrumented, and the
// run-to-completion/shared-buffering configurations.
func RunShardedOpts(shards, slotsPerShard, framesPerStream int, opts ShardedOptions) (*ShardedResult, error) {
	return endsystem.RunShardedOpts(shards, slotsPerShard, framesPerStream, opts)
}

// Fault injection and self-healing (internal/fault, DESIGN.md §7): seeded,
// modeled-time fault schedules drive a supervised sharded run that retries
// PCI faults, restarts crashed pipelines with capped backoff, and
// re-aggregates dead shards' flows as streamlets onto survivors (§4.2).
type (
	// FaultProfile parameterizes a deterministic fault schedule.
	FaultProfile = fault.Profile
	// FaultSchedule is the materialized, seed-replayable event list.
	FaultSchedule = fault.Schedule
	// FaultTrace accumulates the deterministic fault/recovery record.
	FaultTrace = fault.Trace
	// RecoveryConfig bounds restarts and backoff and picks the overload
	// policy for a supervised run.
	RecoveryConfig = shard.RecoveryConfig
	// SupervisedResult is the frame ledger and recovery summary of a
	// supervised run (conservation: Delivered + Dropped == Target).
	SupervisedResult = shard.SupervisedResult
)

// NewFaultSchedule draws a deterministic fault schedule from the profile's
// seed; the same profile always yields the same schedule.
func NewFaultSchedule(p FaultProfile) (*FaultSchedule, error) { return fault.NewSchedule(p) }

// RunShardedSupervised is RunSharded under a fault schedule with the
// self-healing supervisor. A nil schedule injects nothing (and reproduces
// RunSharded's figures); a nil trace discards the recovery record.
func RunShardedSupervised(shards, slotsPerShard, framesPerStream int, mode TransferMode, schedule *FaultSchedule, rcfg RecoveryConfig, trace *FaultTrace) (*SupervisedResult, error) {
	return endsystem.RunShardedSupervised(shards, slotsPerShard, framesPerStream, mode, schedule, rcfg, trace)
}

// RunShardedSupervisedProgram is RunShardedSupervised generalized over the
// registered rank programs: every shard's scheduler runs p and the admitted
// streams carry p's natural spec.
func RunShardedSupervisedProgram(shards, slotsPerShard, framesPerStream int, mode TransferMode, p RankProgram, schedule *FaultSchedule, rcfg RecoveryConfig, trace *FaultTrace) (*SupervisedResult, error) {
	return endsystem.RunShardedSupervisedProgram(shards, slotsPerShard, framesPerStream, mode, p, schedule, rcfg, trace)
}

// Line-card realization (Figure 2): the no-host configuration for backbone
// switches, with dual-ported SRAM between the switch fabric and the
// scheduler.
type (
	// LineCard is one switch line card.
	LineCard = linecard.Card
	// LineCardConfig parameterizes it.
	LineCardConfig = linecard.Config
)

// NewLineCard builds a line card; admit streams, Start, feed the fabric via
// card.SRAM().FabricArrival, and RunCycle.
func NewLineCard(cfg LineCardConfig) (*LineCard, error) { return linecard.New(cfg) }

// Switch fabric (the Figure 2 environment): input ports with virtual output
// queues and round-robin crossbar arbitration, delivering into line cards.
type (
	// SwitchFabric is a VOQ crossbar.
	SwitchFabric = fabric.Fabric
	// FabricPacket is one packet crossing the fabric.
	FabricPacket = fabric.Packet
	// SwitchFabricOutput is a fabric delivery target (a line card's
	// SRAM() satisfies it).
	SwitchFabricOutput = fabric.Output
)

// NewSwitchFabric builds a crossbar with the given input-port count whose
// outputs are line-card ingress ports (card.SRAM() satisfies the output
// interface).
func NewSwitchFabric(inputs int, outputs []SwitchFabricOutput) (*SwitchFabric, error) {
	return fabric.New(inputs, outputs)
}

// Admission control (Figure 1's QoS-bounds × scale framework as
// schedulability checks).
type (
	// AdmissionController tracks admitted streams against slot and link
	// capacity.
	AdmissionController = admission.Controller
)

// NewAdmissionController builds a controller for a scheduler with the given
// stream-slot count.
func NewAdmissionController(slots int) (*AdmissionController, error) {
	return admission.New(slots)
}

// AggregateDelayBound returns the delay bound a stream-slot aggregate of n
// round-robin streamlets with request period T can promise (§6).
func AggregateDelayBound(streamlets int, period uint16) (float64, error) {
	return admission.AggregateDelayBound(streamlets, period)
}

// FPGA model.
type (
	// FPGAArea is a design's slice budget.
	FPGAArea = fpga.Area
)

// EstimateArea returns the Virtex-I slice budget of an N-slot design.
func EstimateArea(slots int, routing fpga.Routing) (FPGAArea, error) {
	return fpga.EstimateArea(slots, routing)
}

// Experiments — one per table/figure; see EXPERIMENTS.md.
type (
	// Table3Result is the block-decisions vs max-finding table.
	Table3Result = experiments.Table3Result
	// Fig7Row is one Figure 7 area/clock point.
	Fig7Row = experiments.Fig7Row
	// Fig8Result is the fair-bandwidth run.
	Fig8Result = experiments.Fig8Result
	// Fig9Result is the queuing-delay run.
	Fig9Result = experiments.Fig9Result
	// Fig10Result is the streamlet-aggregation run.
	Fig10Result = experiments.Fig10Result
)

// Table3 reproduces Table 3 at the paper's scale.
func Table3() (Table3Result, error) {
	return experiments.Table3(experiments.DefaultTable3())
}

// Fig7 reproduces Figure 7 for the synthesized 4–32-slot design space.
func Fig7() ([]Fig7Row, error) { return experiments.Fig7(nil, fpga.VirtexI) }

// Fig8 reproduces Figure 8 (1:1:2:4 fair bandwidth allocation).
func Fig8() (*Fig8Result, error) { return experiments.Fig8(experiments.Fig8Config{}) }

// Fig9 reproduces Figure 9 (queuing delay under bursty traffic).
func Fig9() (*Fig9Result, error) { return experiments.Fig9(experiments.Fig9Config{}) }

// Fig10 reproduces Figure 10 (100 streamlets aggregated per stream-slot).
func Fig10() (*Fig10Result, error) { return experiments.Fig10(experiments.Fig10Config{}) }
