package sharestreams

import (
	"testing"
)

// TestQuickStart exercises the README/package-doc quick-start path.
func TestQuickStart(t *testing.T) {
	sched, err := NewScheduler(Config{Slots: 4, Routing: BlockRouting})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		src := &PeriodicTraffic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := sched.Admit(i, EDFStream(1), src); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	cr := sched.RunCycle()
	if cr.Idle || len(cr.Transmissions) != 4 {
		t.Fatalf("first block cycle: %+v", cr)
	}
}

func TestSpecConstructors(t *testing.T) {
	if err := EDFStream(3).Validate(); err != nil {
		t.Error(err)
	}
	if err := WindowConstrainedStream(4, 1, 4).Validate(); err != nil {
		t.Error(err)
	}
	if err := WindowConstrainedStream(4, 5, 4).Validate(); err == nil {
		t.Error("invalid constraint accepted")
	}
	if err := StaticPriorityStream(9).Validate(); err != nil {
		t.Error(err)
	}
	if err := FairShareStream(2).Validate(); err != nil {
		t.Error(err)
	}
	if err := FairShareStream(0).Validate(); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestMixedDisciplineScheduler(t *testing.T) {
	// The headline capability: EDF + fair-share + static-priority +
	// window-constrained on one datapath.
	sched, err := NewScheduler(Config{Slots: 4, Routing: WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Admit(0, EDFStream(4), &PeriodicTraffic{Gap: 4, Backlogged: true}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Admit(1, WindowConstrainedStream(4, 1, 2), &PeriodicTraffic{Gap: 4, Backlogged: true}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Admit(2, StaticPriorityStream(20000), &PeriodicTraffic{Gap: 1, Backlogged: true}); err != nil {
		t.Fatal(err)
	}
	arr := make([]uint64, 64)
	tags := make([]uint64, 64)
	for i := range arr {
		arr[i] = uint64(i)
		tags[i] = uint64(10000 + 10*i)
	}
	tagged, err := NewTaggedTraffic(arr, tags)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Admit(3, FairShareStream(1), tagged); err != nil {
		t.Fatal(err)
	}
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(200)
	if sched.Totals().Services != 200 {
		t.Fatalf("services = %d", sched.Totals().Services)
	}
	for i := 0; i < 2; i++ {
		if sched.SlotCounters(i).Services == 0 {
			t.Errorf("real-time slot %d starved", i)
		}
	}
}

func TestAggregateFacade(t *testing.T) {
	srcs := make([]HeadSource, 10)
	for i := range srcs {
		srcs[i] = &PeriodicTraffic{Gap: 1, Backlogged: true}
	}
	set, err := NewStreamletSet(1, srcs)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(set)
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := NewScheduler(Config{Slots: 2, Routing: WinnerOnly})
	if err := sched.Admit(0, EDFStream(1), agg); err != nil {
		t.Fatal(err)
	}
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(100)
	// 100 transmitted plus the head currently resident in the slot.
	if agg.Served != 101 {
		t.Fatalf("aggregate served %d, want 101", agg.Served)
	}
}

func TestOperatingPointFacade(t *testing.T) {
	op, err := EndsystemThroughput(TransferPIO)
	if err != nil {
		t.Fatal(err)
	}
	if int(op.PacketsPerS) != 299065 {
		t.Fatalf("PIO point = %d", int(op.PacketsPerS))
	}
}

func TestAreaFacade(t *testing.T) {
	a, err := EstimateArea(32, 0) // BA
	if err != nil {
		t.Fatal(err)
	}
	if !a.FitsVirtex1000() {
		t.Fatal("32-slot BA should fit")
	}
}

func TestExperimentFacades(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-scale experiment sweep")
	}
	if _, err := Fig7(); err != nil {
		t.Error(err)
	}
	res, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanActive) != 4 {
		t.Fatal("fig8 incomplete")
	}
}
